package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpanTree: nesting via Begin/End produces correct parent links
// and exclusive times that sum to the root span's duration.
func TestSpanTree(t *testing.T) {
	tr := NewTrace(7)
	root := tr.Begin(StageL1)
	child := tr.Begin(StageL2Read)
	time.Sleep(time.Millisecond)
	grand := tr.Begin(StageDecode)
	time.Sleep(time.Millisecond)
	grand.End(OutcomeOK)
	child.End(OutcomeOK)
	root.End(OutcomeMiss)
	tr.Finish(OutcomeMiss)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 1 {
		t.Fatalf("parents = %d,%d,%d, want -1,0,1", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	if spans[0].Outcome != OutcomeMiss {
		t.Errorf("root outcome = %q", spans[0].Outcome)
	}
	// Exclusive times of the whole tree sum to the root's duration:
	// each child's DurNS was subtracted exactly once from its parent.
	var excl int64
	for _, sp := range spans {
		if sp.ExclNS < 0 {
			t.Errorf("span %s: negative exclusive %d", sp.Stage, sp.ExclNS)
		}
		excl += sp.ExclNS
	}
	if excl != spans[0].DurNS {
		t.Errorf("sum excl = %d, want root dur %d", excl, spans[0].DurNS)
	}
	if tr.TotalNS < spans[0].DurNS {
		t.Errorf("total %d < root dur %d", tr.TotalNS, spans[0].DurNS)
	}
}

// TestNilTraceNoops: the disabled fast path is nil-receiver safe and
// allocation-free end to end, including context round-trips.
func TestNilTraceNoops(t *testing.T) {
	var tr *Trace
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin(StageL1)
		sp.End(OutcomeHit)
		tr.Event(StageQuarantine, OutcomeCorrupt)
		tr.Finish(OutcomeHit)
		tr.SetLabels("w", "c", 1)
		c2 := WithTrace(ctx, tr)
		if FromContext(c2) != nil {
			t.Fatal("nil trace came back non-nil")
		}
		if tr.TraceID() != 0 || tr.Spans() != nil {
			t.Fatal("nil trace leaked state")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-sink path allocates %v/op, want 0", allocs)
	}
	var rec *Recorder
	if rec.StartTrace() != nil {
		t.Fatal("nil recorder started a trace")
	}
	rec.Record(nil)
	if rec.Snapshot(10) != nil || rec.Exemplars() != nil {
		t.Fatal("nil recorder returned records")
	}
}

// TestTraceTruncation: a trace drops spans past the cap instead of
// growing, and reports it.
func TestTraceTruncation(t *testing.T) {
	tr := NewTrace(1)
	for i := 0; i < maxSpans+10; i++ {
		tr.Begin(StageDecode).End(OutcomeOK)
	}
	if len(tr.Spans()) != maxSpans {
		t.Fatalf("got %d spans, want cap %d", len(tr.Spans()), maxSpans)
	}
	if !tr.Truncated() {
		t.Fatal("truncation not reported")
	}
}

// TestRecorderRing: the ring keeps the newest records, snapshot
// returns them newest-first, and the slowest request survives as an
// exemplar after the ring has cycled past it.
func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(16, 2)
	slowID := uint64(0)
	for i := 0; i < 100; i++ {
		tr := rec.StartTrace()
		tr.SetLabels("fft", "dict", i)
		sp := tr.Begin(StageL1)
		if i == 3 { // make one early trace the slowest of the run
			time.Sleep(5 * time.Millisecond)
			slowID = tr.TraceID()
		}
		sp.End(OutcomeHit)
		tr.Finish(OutcomeHit)
		rec.Record(tr)
	}
	snap := rec.Snapshot(8)
	if len(snap) != 8 {
		t.Fatalf("snapshot returned %d, want 8", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ID > snap[i-1].ID {
			t.Fatalf("snapshot not newest-first: %d before %d", snap[i-1].ID, snap[i].ID)
		}
	}
	if snap[0].ID != 100 {
		t.Errorf("newest id = %d, want 100", snap[0].ID)
	}
	for _, r := range snap {
		if r.ID == slowID {
			t.Errorf("trace %d should have been overwritten in a 16-slot ring", slowID)
		}
		if len(r.Spans) != 1 || r.Spans[0].Stage != StageL1 {
			t.Errorf("record %d spans = %+v", r.ID, r.Spans)
		}
	}
	ex := rec.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("got %d exemplars, want 2", len(ex))
	}
	if ex[0].ID != slowID {
		t.Errorf("slowest exemplar id = %d, want %d", ex[0].ID, slowID)
	}
	if ex[0].TotalNS < ex[1].TotalNS {
		t.Error("exemplars not slowest-first")
	}
	st := rec.Stats()
	if st.Recorded != 100 || st.Truncated != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRecorderSteadyStateAllocs: with the pool warm and ring slots
// populated, a start→span→finish→record cycle allocates only the
// context value.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	rec := NewRecorder(64, 2)
	cycle := func() {
		tr := rec.StartTrace()
		sp := tr.Begin(StageL1)
		sp.End(OutcomeHit)
		tr.Finish(OutcomeHit)
		rec.Record(tr)
	}
	for i := 0; i < 200; i++ { // warm pool, ring slots and exemplars
		cycle()
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs > 0 {
		t.Errorf("steady-state record allocates %v/op, want 0", allocs)
	}
}

// TestContextRoundTrip: WithTrace/FromContext carry the trace.
func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace(9)
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("background context produced a trace")
	}
}

// TestEscapeLabelValue covers the three escapes the format requires.
func TestEscapeLabelValue(t *testing.T) {
	got := EscapeLabelValue("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Errorf("escape = %q, want %q", got, want)
	}
	if s := EscapeLabelValue("plain"); s != "plain" {
		t.Errorf("plain escaped to %q", s)
	}
}

// TestParseLevelAndLogger covers the flag surface of the log helpers.
func TestParseLevelAndLogger(t *testing.T) {
	for _, bad := range []string{"verbose", "trace"} {
		if _, err := ParseLevel(bad); err == nil {
			t.Errorf("ParseLevel(%q) accepted", bad)
		}
	}
	var sb strings.Builder
	lg, err := NewLogger(&sb, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	if !strings.Contains(sb.String(), `"msg":"hello"`) {
		t.Errorf("json log output %q", sb.String())
	}
	if _, err := NewLogger(&sb, "info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
	Discard.Info("dropped")
}
