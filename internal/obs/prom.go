package obs

import (
	"io"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a Prometheus sample.
type Label struct {
	Name, Value string
}

// PromWriter renders Prometheus text exposition format (version
// 0.0.4). Callers declare each metric family once with Family and
// then emit its samples; the writer handles label escaping and float
// formatting. The first write error sticks and is reported by Err.
type PromWriter struct {
	w   io.Writer
	sb  strings.Builder
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first error any write hit.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) flushLine() {
	if p.err != nil {
		p.sb.Reset()
		return
	}
	_, p.err = io.WriteString(p.w, p.sb.String())
	p.sb.Reset()
}

// Family writes the # HELP / # TYPE header pair for a metric family.
// typ is "counter", "gauge" or "histogram". All of the family's
// samples must follow before the next Family call.
func (p *PromWriter) Family(name, typ, help string) {
	p.sb.WriteString("# HELP ")
	p.sb.WriteString(name)
	p.sb.WriteByte(' ')
	p.sb.WriteString(escapeHelp(help))
	p.sb.WriteString("\n# TYPE ")
	p.sb.WriteString(name)
	p.sb.WriteByte(' ')
	p.sb.WriteString(typ)
	p.sb.WriteByte('\n')
	p.flushLine()
}

// Sample writes one sample line: name{labels} value.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.sb.WriteString(name)
	p.writeLabels(labels, "", 0, false)
	p.sb.WriteByte(' ')
	p.sb.WriteString(formatPromFloat(v))
	p.sb.WriteByte('\n')
	p.flushLine()
}

// Histogram writes a full histogram series under name for one label
// set: cumulative _bucket lines for each upper bound (in the caller's
// unit, typically seconds), the +Inf bucket, _sum and _count.
// cumCounts[i] is the cumulative count at bounds[i]; count is the
// total (the +Inf bucket) and must be >= the last cumulative count.
func (p *PromWriter) Histogram(name string, labels []Label, bounds []float64, cumCounts []int64, sum float64, count int64) {
	for i, b := range bounds {
		p.sb.WriteString(name)
		p.sb.WriteString("_bucket")
		p.writeLabels(labels, formatPromFloat(b), 0, true)
		p.sb.WriteByte(' ')
		p.sb.WriteString(strconv.FormatInt(cumCounts[i], 10))
		p.sb.WriteByte('\n')
	}
	p.sb.WriteString(name)
	p.sb.WriteString("_bucket")
	p.writeLabels(labels, "+Inf", 0, true)
	p.sb.WriteByte(' ')
	p.sb.WriteString(strconv.FormatInt(count, 10))
	p.sb.WriteByte('\n')
	p.sb.WriteString(name)
	p.sb.WriteString("_sum")
	p.writeLabels(labels, "", 0, false)
	p.sb.WriteByte(' ')
	p.sb.WriteString(formatPromFloat(sum))
	p.sb.WriteByte('\n')
	p.sb.WriteString(name)
	p.sb.WriteString("_count")
	p.writeLabels(labels, "", 0, false)
	p.sb.WriteByte(' ')
	p.sb.WriteString(strconv.FormatInt(count, 10))
	p.sb.WriteByte('\n')
	p.flushLine()
}

// writeLabels renders {a="b",le="..."}; nothing when there are no
// labels and no le.
func (p *PromWriter) writeLabels(labels []Label, le string, _ int, withLE bool) {
	if len(labels) == 0 && !withLE {
		return
	}
	p.sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			p.sb.WriteByte(',')
		}
		p.sb.WriteString(l.Name)
		p.sb.WriteString(`="`)
		p.sb.WriteString(EscapeLabelValue(l.Value))
		p.sb.WriteByte('"')
	}
	if withLE {
		if len(labels) > 0 {
			p.sb.WriteByte(',')
		}
		p.sb.WriteString(`le="`)
		p.sb.WriteString(le)
		p.sb.WriteByte('"')
	}
	p.sb.WriteByte('}')
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatPromFloat renders a value the exposition format accepts,
// using the shortest round-trippable form.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
