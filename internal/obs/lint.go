package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintProm validates Prometheus text exposition: line syntax, metric
// and label name rules, HELP/TYPE pairing, family grouping (no
// interleaved samples), and histogram invariants (parseable le
// bounds, a +Inf bucket, cumulative counts monotone in le, _count
// equal to the +Inf bucket). It returns the number of samples seen
// and the first violation. The CI smoke job runs this against a live
// /metrics/prom scrape via cmd/apcc-obslint.
func LintProm(r io.Reader) (samples int, err error) {
	type family struct {
		typ     string
		help    bool
		sampled bool
	}
	families := map[string]*family{}
	// histogram bucket state: family -> labelset(sans le) -> le -> count
	buckets := map[string]map[string]map[float64]float64{}
	counts := map[string]map[string]float64{} // _count samples
	sums := map[string]map[string]bool{}      // _sum presence
	var current string                        // family currently being emitted
	lineNo := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("prom line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return samples, fail("invalid metric name in %s", fields[1])
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			if fields[1] == "HELP" {
				f.help = true
				continue
			}
			if len(fields) < 4 {
				return samples, fail("TYPE missing type")
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return samples, fail("unknown TYPE %q", fields[3])
			}
			if f.typ != "" {
				return samples, fail("duplicate TYPE for %s", name)
			}
			if f.sampled {
				return samples, fail("TYPE after samples for %s", name)
			}
			if !f.help {
				return samples, fail("TYPE without preceding HELP for %s", name)
			}
			f.typ = fields[3]
			current = name
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return samples, fail("%v", perr)
		}
		samples++
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if f := families[trimmed]; f != nil && f.typ == "histogram" {
					base, suffix = trimmed, s
				}
				break
			}
		}
		f := families[base]
		if f == nil || f.typ == "" {
			return samples, fail("sample for %s without TYPE", base)
		}
		f.sampled = true
		if base != current {
			return samples, fail("sample for %s interleaved into family %s", base, current)
		}
		if f.typ == "histogram" {
			le, rest, hasLE := splitLE(labels)
			key := labelsetKey(rest)
			switch suffix {
			case "_bucket":
				if !hasLE {
					return samples, fail("histogram bucket without le")
				}
				bound, berr := parseLE(le)
				if berr != nil {
					return samples, fail("bad le %q", le)
				}
				if buckets[base] == nil {
					buckets[base] = map[string]map[float64]float64{}
				}
				if buckets[base][key] == nil {
					buckets[base][key] = map[float64]float64{}
				}
				buckets[base][key][bound] = value
			case "_count":
				if counts[base] == nil {
					counts[base] = map[string]float64{}
				}
				counts[base][key] = value
			case "_sum":
				if sums[base] == nil {
					sums[base] = map[string]bool{}
				}
				sums[base][key] = true
			default:
				return samples, fail("bare sample %s for histogram family", name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for name, f := range families {
		if f.typ == "" {
			return samples, fmt.Errorf("prom: HELP without TYPE for %s", name)
		}
	}
	for name, sets := range buckets {
		for key, bs := range sets {
			bounds := make([]float64, 0, len(bs))
			hasInf := false
			for b := range bs {
				if math.IsInf(b, 1) {
					hasInf = true
				}
				bounds = append(bounds, b)
			}
			if !hasInf {
				return samples, fmt.Errorf("prom: %s{%s}: no +Inf bucket", name, key)
			}
			sort.Float64s(bounds)
			prev := -1.0
			for _, b := range bounds {
				if bs[b] < prev {
					return samples, fmt.Errorf("prom: %s{%s}: bucket counts not monotone at le=%g (%g < %g)",
						name, key, b, bs[b], prev)
				}
				prev = bs[b]
			}
			cnt, ok := counts[name][key]
			if !ok {
				return samples, fmt.Errorf("prom: %s{%s}: missing _count", name, key)
			}
			if cnt != bs[math.Inf(1)] {
				return samples, fmt.Errorf("prom: %s{%s}: _count %g != +Inf bucket %g",
					name, key, cnt, bs[math.Inf(1)])
			}
			if !sums[name][key] {
				return samples, fmt.Errorf("prom: %s{%s}: missing _sum", name, key)
			}
		}
	}
	return samples, nil
}

// parseSample parses `name{l="v",...} value`, validating names and
// label syntax (including escape sequences in values).
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		j := 1
		for {
			if j >= len(rest) {
				return "", nil, 0, fmt.Errorf("unterminated label set")
			}
			if rest[j] == '}' {
				j++
				break
			}
			k := j
			for k < len(rest) && rest[k] != '=' {
				k++
			}
			lname := rest[j:k]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			if k+1 >= len(rest) || rest[k+1] != '"' {
				return "", nil, 0, fmt.Errorf("label %s: value not quoted", lname)
			}
			k += 2
			var val strings.Builder
			for {
				if k >= len(rest) {
					return "", nil, 0, fmt.Errorf("label %s: unterminated value", lname)
				}
				c := rest[k]
				if c == '"' {
					k++
					break
				}
				if c == '\\' {
					if k+1 >= len(rest) {
						return "", nil, 0, fmt.Errorf("label %s: dangling escape", lname)
					}
					switch rest[k+1] {
					case '\\', '"':
						val.WriteByte(rest[k+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("label %s: bad escape \\%c", lname, rest[k+1])
					}
					k += 2
					continue
				}
				val.WriteByte(c)
				k++
			}
			labels = append(labels, Label{Name: lname, Value: val.String()})
			if k < len(rest) && rest[k] == ',' {
				k++
			}
			j = k
		}
		rest = rest[j:]
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitLE removes the le label from a set, returning its value, the
// remaining labels, and whether it was present.
func splitLE(labels []Label) (le string, rest []Label, ok bool) {
	for _, l := range labels {
		if l.Name == "le" {
			le, ok = l.Value, true
			continue
		}
		rest = append(rest, l)
	}
	return le, rest, ok
}

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

// labelsetKey canonicalizes a label set for grouping (sorted,
// escaped).
func labelsetKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// LintTraceDump validates a /debug/trace JSON document, returning how
// many traces and spans it carries. Used by the CI smoke job to fail
// on zero recorded spans.
func LintTraceDump(r io.Reader) (traces, spans int, err error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return 0, 0, fmt.Errorf("trace dump: %w", err)
	}
	for _, rec := range append(append([]Record(nil), d.Traces...), d.Exemplars...) {
		for i, sp := range rec.Spans {
			if sp.Parent >= i || sp.Parent < -1 {
				return 0, 0, fmt.Errorf("trace %d: span %d has invalid parent %d", rec.ID, i, sp.Parent)
			}
			if sp.Stage == "" {
				return 0, 0, fmt.Errorf("trace %d: span %d has empty stage", rec.ID, i)
			}
		}
	}
	traces = len(d.Traces)
	for _, rec := range d.Traces {
		spans += len(rec.Spans)
	}
	return traces, spans, nil
}
