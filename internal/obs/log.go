package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Discard is the no-op logger: a *slog.Logger whose handler reports
// every level disabled, so call sites need no nil checks and disabled
// logging costs one branch.
var Discard = slog.New(slog.DiscardHandler)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a structured logger writing to w. format is "text"
// or "json" (the -log-format flag); level is parsed by ParseLevel.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}
