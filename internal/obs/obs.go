// Package obs is the serving stack's zero-dependency observability
// layer: request-scoped span traces carried via context.Context,
// a lock-striped ring buffer of completed traces with tail-latency
// exemplars, Prometheus text-exposition helpers (writer and linter),
// and log/slog construction shared by the commands.
//
// The design center is the nil-sink fast path: every method on a nil
// *Trace or nil *Recorder is a no-op that touches no clock and
// allocates nothing, so instrumented hot paths (the L1 block-cache
// hit) cost the same with tracing disabled as they did before the
// layer existed. With a sink attached, a trace is pooled, its spans
// live in a fixed-capacity array, and recording copies into reusable
// ring slots — steady-state tracing is allocation-free too.
package obs

import (
	"context"
	"time"
)

// Stage names: where a block-serving request spends its time. These
// are the label values of the apcc_block_stage_seconds histogram and
// the span names in /debug/trace.
const (
	StageRoute      = "route"        // entry resolution, id parse, request validation
	StageBuild      = "build"        // (workload,codec) container build or warm restore
	StageL1         = "l1"           // block-cache lookup; on a miss this span covers the compute
	StageL2Read     = "l2-read"      // store ReadAt through the container index
	StageWordRead   = "l2-word-read" // sub-block word-span read through the v3 group directory
	StageDecode     = "decode"       // codec DecompressAppend + CRC verify of one block
	StageReadahead  = "readahead"    // speculative successor verify + L1 admission
	StageRebuild    = "rebuild"      // full recompress of the plain image (incl. pool queueing)
	StageWrite      = "write"        // response headers + payload write
	StageQuarantine = "quarantine"   // store object detached as corrupt (zero-duration event)
)

// Span outcomes.
const (
	OutcomeOK        = "ok"
	OutcomeHit       = "hit"
	OutcomeMiss      = "miss"
	OutcomeCoalesced = "coalesced"
	OutcomeError     = "error"
	OutcomeCorrupt   = "corrupt"
)

// maxSpans bounds a trace's span count. Traces never grow past it:
// Begin drops further spans (marking the trace truncated) so one
// pathological request cannot balloon the pool's retained memory.
const maxSpans = 64

// Span is one timed stage within a trace. Parent indexes the enclosing
// span within the same trace (-1 for a root-level span), forming the
// span tree /debug/trace renders. Durations are nanoseconds relative
// to the trace clock; ExclNS is DurNS minus the summed durations of
// direct children — the time attributable to this stage alone, which
// is what the per-stage histograms observe (so nested stages never
// double-count).
type Span struct {
	Stage   string `json:"stage"`
	Outcome string `json:"outcome"`
	Parent  int    `json:"parent"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	ExclNS  int64  `json:"excl_ns"`

	childNS int64 // summed DurNS of direct children; finalized before End
}

// Trace is one request's span collection. It is not safe for
// concurrent use: spans must Begin and End on goroutines ordered by
// happens-before (the request goroutine, including compute callbacks
// it runs synchronously). All methods are nil-receiver safe no-ops,
// which is the tracing-disabled fast path.
type Trace struct {
	ID       uint64 `json:"id"`
	Workload string `json:"workload"`
	Codec    string `json:"codec"`
	Block    int    `json:"block"`
	Outcome  string `json:"outcome"`
	TotalNS  int64  `json:"total_ns"`

	start     time.Time
	spans     []Span
	cur       int // index of the innermost open span, -1 at root
	truncated bool
}

// NewTrace returns a standalone trace (tests and tools; the serving
// tier gets pooled traces from a Recorder).
func NewTrace(id uint64) *Trace {
	t := &Trace{spans: make([]Span, 0, maxSpans)}
	t.reset(id)
	return t
}

func (t *Trace) reset(id uint64) {
	t.ID = id
	t.Workload, t.Codec, t.Outcome = "", "", ""
	t.Block = 0
	t.TotalNS = 0
	t.start = time.Now()
	t.spans = t.spans[:0]
	t.cur = -1
	t.truncated = false
}

// SetLabels attaches the request identity once it is known (the codec
// name, for example, resolves only after the entry is built).
func (t *Trace) SetLabels(workload, codec string, block int) {
	if t == nil {
		return
	}
	t.Workload, t.Codec, t.Block = workload, codec, block
}

// SpanHandle is the value returned by Begin; End closes the span. A
// zero handle (from a nil trace or a truncated one) is a no-op.
type SpanHandle struct {
	t   *Trace
	idx int32
}

// Begin opens a span as a child of the innermost open span. On a nil
// trace it returns a no-op handle without reading the clock.
func (t *Trace) Begin(stage string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	if len(t.spans) == cap(t.spans) {
		t.truncated = true
		return SpanHandle{}
	}
	idx := len(t.spans)
	t.spans = append(t.spans, Span{
		Stage:   stage,
		Outcome: OutcomeOK,
		Parent:  t.cur,
		StartNS: int64(time.Since(t.start)),
	})
	t.cur = idx
	return SpanHandle{t: t, idx: int32(idx)}
}

// End closes the span with the given outcome, finalizing its duration
// and exclusive time and crediting the duration to the parent's child
// total.
func (h SpanHandle) End(outcome string) {
	if h.t == nil {
		return
	}
	sp := &h.t.spans[h.idx]
	sp.DurNS = int64(time.Since(h.t.start)) - sp.StartNS
	sp.ExclNS = sp.DurNS - sp.childNS
	sp.Outcome = outcome
	h.t.cur = sp.Parent
	if sp.Parent >= 0 {
		h.t.spans[sp.Parent].childNS += sp.DurNS
	}
}

// Event records a zero-duration marker span (a quarantine, for
// example) under the innermost open span.
func (t *Trace) Event(stage, outcome string) {
	if t == nil || len(t.spans) == cap(t.spans) {
		return
	}
	t.spans = append(t.spans, Span{
		Stage:   stage,
		Outcome: outcome,
		Parent:  t.cur,
		StartNS: int64(time.Since(t.start)),
	})
}

// Finish stamps the trace's end-to-end duration and outcome. Call
// after the last span has ended and before Recorder.Record.
func (t *Trace) Finish(outcome string) {
	if t == nil {
		return
	}
	t.Outcome = outcome
	t.TotalNS = int64(time.Since(t.start))
}

// Spans exposes the recorded spans (read-only; valid until the trace
// is handed back to its recorder via Record).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// TraceID returns the trace's id, 0 for a nil trace.
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// Truncated reports whether Begin dropped spans past the per-trace cap.
func (t *Trace) Truncated() bool { return t != nil && t.truncated }

type ctxKey struct{}

// WithTrace attaches a trace to the context. A nil trace returns ctx
// unchanged, so the disabled path allocates nothing.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the attached trace, nil when absent (or ctx is
// nil). The nil result flows into Begin/Event/Finish as no-ops.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
