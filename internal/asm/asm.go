// Package asm implements a two-pass assembler for ERI32 assembly text.
//
// The source language is one statement per line:
//
//	; comment                     (also "#" and "//" comments)
//	label:                        (labels may share a line with an instruction)
//	add  r1, r2, r3               (R-format)
//	addi r1, r2, -5               (I-format ALU)
//	lw   r1, 8(r2)                (loads/stores use displacement syntax)
//	beq  r1, r2, label            (branch targets are labels or numbers)
//	j    label
//	.word 0xdeadbeef              (raw data word)
//	.equ  NAME, 42                (assembly-time constant)
//	.align 4                      (pad with nops to a word multiple)
//
// Pass one records label addresses, pass two encodes. All addresses are
// word indices (the ERI32 convention).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"apbcc/internal/isa"
)

// Result is an assembled program: its instruction words and the symbol
// table mapping labels to word addresses.
type Result struct {
	Words   []uint32
	Symbols map[string]int
}

// Error is an assembly diagnostic carrying the 1-based source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type statement struct {
	line   int      // 1-based source line
	addr   int      // word address
	mnem   string   // mnemonic or directive (without leading dot for .word)
	fields []string // comma-separated operand fields
}

// Assemble translates ERI32 assembly source into a program image.
func Assemble(src string) (*Result, error) {
	symbols := make(map[string]int)
	equs := make(map[string]int64)
	var stmts []statement

	// Pass one: strip comments, collect labels, lay out addresses.
	addr := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		// Peel labels; several may prefix one statement.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validIdent(label) {
				return nil, errf(lineNo+1, "invalid label %q", label)
			}
			if _, dup := symbols[label]; dup {
				return nil, errf(lineNo+1, "duplicate label %q", label)
			}
			symbols[label] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnem, rest := splitMnemonic(line)
		st := statement{line: lineNo + 1, addr: addr, mnem: mnem, fields: splitFields(rest)}
		switch mnem {
		case ".equ":
			if len(st.fields) != 2 {
				return nil, errf(st.line, ".equ wants NAME, VALUE")
			}
			if !validIdent(st.fields[0]) {
				return nil, errf(st.line, "invalid .equ name %q", st.fields[0])
			}
			v, err := parseInt(st.fields[1], equs)
			if err != nil {
				return nil, errf(st.line, ".equ value: %v", err)
			}
			equs[st.fields[0]] = v
			continue // no code emitted
		case ".align":
			if len(st.fields) != 1 {
				return nil, errf(st.line, ".align wants one argument")
			}
			n, err := parseInt(st.fields[0], equs)
			if err != nil || n <= 0 {
				return nil, errf(st.line, "bad .align argument %q", st.fields[0])
			}
			pad := (int(n) - addr%int(n)) % int(n)
			st.fields = []string{strconv.Itoa(pad)}
			addr += pad
		case ".word":
			if len(st.fields) == 0 {
				return nil, errf(st.line, ".word wants at least one value")
			}
			addr += len(st.fields)
		default:
			if strings.HasPrefix(mnem, ".") {
				return nil, errf(st.line, "unknown directive %q", mnem)
			}
			if _, ok := isa.OpcodeByName(mnem); !ok {
				return nil, errf(st.line, "unknown mnemonic %q", mnem)
			}
			addr++
		}
		stmts = append(stmts, st)
	}

	// Pass two: encode.
	words := make([]uint32, 0, addr)
	for _, st := range stmts {
		switch st.mnem {
		case ".align":
			pad, _ := strconv.Atoi(st.fields[0])
			nop := isa.Instruction{Op: isa.OpNOP}.MustEncode()
			for i := 0; i < pad; i++ {
				words = append(words, nop)
			}
		case ".word":
			for _, f := range st.fields {
				v, err := parseInt(f, equs)
				if err != nil {
					// A label is also a legal .word value.
					if a, ok := symbols[f]; ok {
						v = int64(a)
					} else {
						return nil, errf(st.line, ".word value %q: %v", f, err)
					}
				}
				words = append(words, uint32(v))
			}
		default:
			in, err := encodeStatement(st, symbols, equs)
			if err != nil {
				return nil, err
			}
			w, err := in.Encode()
			if err != nil {
				return nil, errf(st.line, "%v", err)
			}
			words = append(words, w)
		}
	}
	if len(words) != addr {
		return nil, fmt.Errorf("asm: internal error: layout %d words, emitted %d", addr, len(words))
	}
	return &Result{Words: words, Symbols: symbols}, nil
}

// encodeStatement builds the Instruction for one mnemonic statement.
func encodeStatement(st statement, symbols map[string]int, equs map[string]int64) (isa.Instruction, error) {
	op, _ := isa.OpcodeByName(st.mnem)
	in := isa.Instruction{Op: op}
	f := st.fields

	reg := func(s string) (isa.Reg, error) {
		r, err := parseReg(s)
		if err != nil {
			return 0, errf(st.line, "%v", err)
		}
		return r, nil
	}
	imm := func(s string) (int32, error) {
		// Labels are legal immediates (address materialization, e.g.
		// "addi r1, r0, table" before an indirect jump or load).
		if abs, ok := symbols[s]; ok {
			return int32(abs), nil
		}
		v, err := parseInt(s, equs)
		if err != nil {
			return 0, errf(st.line, "immediate %q: %v", s, err)
		}
		return int32(v), nil
	}
	// target resolves a label or numeric operand into the encoded
	// immediate for a control transfer at word address st.addr.
	target := func(s string) (int32, error) {
		abs, ok := symbols[s]
		if !ok {
			v, err := parseInt(s, equs)
			if err != nil {
				return 0, errf(st.line, "unknown target %q", s)
			}
			abs = int(v)
		}
		if op.Format() == isa.FormatB {
			return int32(abs - st.addr - 1), nil
		}
		return int32(abs), nil
	}

	var err error
	switch op {
	case isa.OpNOP, isa.OpHALT:
		if len(f) != 0 {
			return in, errf(st.line, "%s takes no operands", st.mnem)
		}
		return in, nil
	case isa.OpJR:
		if len(f) != 1 {
			return in, errf(st.line, "jr wants one register")
		}
		in.Rs1, err = reg(f[0])
		return in, err
	case isa.OpJALR:
		if len(f) != 2 {
			return in, errf(st.line, "jalr wants rd, rs1")
		}
		if in.Rd, err = reg(f[0]); err != nil {
			return in, err
		}
		in.Rs1, err = reg(f[1])
		return in, err
	case isa.OpSYS:
		if len(f) != 1 {
			return in, errf(st.line, "sys wants one immediate")
		}
		in.Imm, err = imm(f[0])
		return in, err
	case isa.OpLUI:
		if len(f) != 2 {
			return in, errf(st.line, "lui wants rd, imm")
		}
		if in.Rd, err = reg(f[0]); err != nil {
			return in, err
		}
		in.Imm, err = imm(f[1])
		return in, err
	case isa.OpJ, isa.OpJAL:
		if len(f) != 1 {
			return in, errf(st.line, "%s wants one target", st.mnem)
		}
		in.Imm, err = target(f[0])
		return in, err
	case isa.OpLW, isa.OpLH, isa.OpLB, isa.OpSW, isa.OpSH, isa.OpSB:
		if len(f) != 2 {
			return in, errf(st.line, "%s wants rd, disp(base)", st.mnem)
		}
		if in.Rd, err = reg(f[0]); err != nil {
			return in, err
		}
		disp, base, perr := parseDisp(f[1])
		if perr != nil {
			return in, errf(st.line, "%v", perr)
		}
		if in.Rs1, err = reg(base); err != nil {
			return in, err
		}
		in.Imm, err = imm(disp)
		return in, err
	}
	switch op.Format() {
	case isa.FormatR:
		if len(f) != 3 {
			return in, errf(st.line, "%s wants rd, rs1, rs2", st.mnem)
		}
		if in.Rd, err = reg(f[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(f[1]); err != nil {
			return in, err
		}
		in.Rs2, err = reg(f[2])
		return in, err
	case isa.FormatI:
		if len(f) != 3 {
			return in, errf(st.line, "%s wants rd, rs1, imm", st.mnem)
		}
		if in.Rd, err = reg(f[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(f[1]); err != nil {
			return in, err
		}
		in.Imm, err = imm(f[2])
		return in, err
	case isa.FormatB:
		if len(f) != 3 {
			return in, errf(st.line, "%s wants rs1, rs2, target", st.mnem)
		}
		if in.Rs1, err = reg(f[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(f[1]); err != nil {
			return in, err
		}
		in.Imm, err = target(f[2])
		return in, err
	}
	return in, errf(st.line, "unhandled mnemonic %q", st.mnem)
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func splitMnemonic(line string) (mnem, rest string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

func splitFields(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// parseInt parses decimal, hex (0x), binary (0b) and char ('c')
// literals, and .equ constant names.
func parseInt(s string, equs map[string]int64) (int64, error) {
	if v, ok := equs[s]; ok {
		return v, nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		inner := s[1 : len(s)-1]
		if len(inner) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(inner[0]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// parseDisp splits "disp(base)" into its two components.
func parseDisp(s string) (disp, base string, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("bad displacement operand %q, want disp(base)", s)
	}
	disp = strings.TrimSpace(s[:open])
	if disp == "" {
		disp = "0"
	}
	base = strings.TrimSpace(s[open+1 : len(s)-1])
	return disp, base, nil
}
