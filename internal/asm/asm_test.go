package asm

import (
	"errors"
	"strings"
	"testing"

	"apbcc/internal/isa"
)

func assemble(t *testing.T, src string) *Result {
	t.Helper()
	r, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return r
}

func decode(t *testing.T, w uint32) isa.Instruction {
	t.Helper()
	in, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return in
}

func TestBasicProgram(t *testing.T) {
	r := assemble(t, `
		; simple countdown
		start:
			addi r1, r0, 10
		loop:
			addi r1, r1, -1
			bne  r1, r0, loop
			halt
	`)
	if len(r.Words) != 4 {
		t.Fatalf("words = %d, want 4", len(r.Words))
	}
	if r.Symbols["start"] != 0 || r.Symbols["loop"] != 1 {
		t.Errorf("symbols = %v", r.Symbols)
	}
	br := decode(t, r.Words[2])
	if br.Op != isa.OpBNE {
		t.Fatalf("word 2 op = %v", br.Op)
	}
	if tgt, ok := br.StaticTarget(2); !ok || tgt != 1 {
		t.Errorf("branch target = %d, want 1", tgt)
	}
	if decode(t, r.Words[3]).Op != isa.OpHALT {
		t.Error("word 3 is not halt")
	}
}

func TestForwardReference(t *testing.T) {
	r := assemble(t, `
			beq r0, r0, done
			nop
		done:
			halt
	`)
	br := decode(t, r.Words[0])
	if tgt, ok := br.StaticTarget(0); !ok || tgt != 2 {
		t.Errorf("forward branch target = %d, want 2", tgt)
	}
}

func TestJumpToLabel(t *testing.T) {
	r := assemble(t, `
		main:
			j end
			nop
			nop
		end:
			halt
	`)
	j := decode(t, r.Words[0])
	if j.Op != isa.OpJ || j.Imm != 3 {
		t.Errorf("jump = %v, want j 3", j)
	}
}

func TestLoadStoreSyntax(t *testing.T) {
	r := assemble(t, `
		lw r1, 8(r2)
		sw r3, -4(r29)
		lb r4, (r5)
	`)
	lw := decode(t, r.Words[0])
	if lw.Op != isa.OpLW || lw.Rd != 1 || lw.Rs1 != 2 || lw.Imm != 8 {
		t.Errorf("lw = %v", lw)
	}
	sw := decode(t, r.Words[1])
	if sw.Op != isa.OpSW || sw.Rd != 3 || sw.Rs1 != 29 || sw.Imm != -4 {
		t.Errorf("sw = %v", sw)
	}
	lb := decode(t, r.Words[2])
	if lb.Imm != 0 || lb.Rs1 != 5 {
		t.Errorf("lb = %v", lb)
	}
}

func TestDirectives(t *testing.T) {
	r := assemble(t, `
		.equ SIZE, 16
		.equ MASK, 0xff
			addi r1, r0, SIZE
			andi r2, r1, MASK
			.word 0xdeadbeef, 7
		tbl: .word tbl
	`)
	if decode(t, r.Words[0]).Imm != 16 {
		t.Error("equ SIZE not applied")
	}
	if decode(t, r.Words[1]).Imm != 0xff {
		t.Error("equ MASK not applied")
	}
	if r.Words[2] != 0xdeadbeef || r.Words[3] != 7 {
		t.Errorf("words = %#x %#x", r.Words[2], r.Words[3])
	}
	if r.Words[4] != 4 {
		t.Errorf("label-valued .word = %d, want 4", r.Words[4])
	}
}

func TestAlign(t *testing.T) {
	r := assemble(t, `
			nop
			.align 4
		aligned:
			halt
	`)
	if r.Symbols["aligned"] != 4 {
		t.Errorf("aligned at %d, want 4", r.Symbols["aligned"])
	}
	for i := 1; i < 4; i++ {
		if decode(t, r.Words[i]).Op != isa.OpNOP {
			t.Errorf("word %d is not nop padding", i)
		}
	}
}

func TestCommentStyles(t *testing.T) {
	r := assemble(t, `
		nop ; semicolon
		nop # hash
		nop // slashes
	`)
	if len(r.Words) != 3 {
		t.Errorf("words = %d, want 3", len(r.Words))
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	r := assemble(t, `
		a: b: c: halt
	`)
	for _, l := range []string{"a", "b", "c"} {
		if r.Symbols[l] != 0 {
			t.Errorf("label %s = %d", l, r.Symbols[l])
		}
	}
}

func TestCharLiteral(t *testing.T) {
	r := assemble(t, `addi r1, r0, 'A'`)
	if decode(t, r.Words[0]).Imm != 65 {
		t.Error("char literal")
	}
}

func TestNumericBranchTarget(t *testing.T) {
	r := assemble(t, `
		beq r0, r0, 0
		halt
	`)
	br := decode(t, r.Words[0])
	if tgt, _ := br.StaticTarget(0); tgt != 0 {
		t.Errorf("numeric branch target = %d", tgt)
	}
}

func errorLine(t *testing.T, src string) int {
	t.Helper()
	_, err := Assemble(src)
	if err == nil {
		t.Fatalf("Assemble(%q) succeeded, want error", src)
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *asm.Error", err)
	}
	return ae.Line
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		frag string
	}{
		{"unknown mnemonic", "nop\nfrobnicate r1", 2, "unknown mnemonic"},
		{"bad register", "add r1, r2, r99", 1, "bad register"},
		{"bad operand count", "add r1, r2", 1, "wants rd, rs1, rs2"},
		{"duplicate label", "x: nop\nx: nop", 2, "duplicate label"},
		{"unknown target", "j nowhere", 1, "unknown target"},
		{"unknown directive", ".bogus 1", 1, "unknown directive"},
		{"bad label", "9lives: nop", 1, "invalid label"},
		{"bad displacement", "lw r1, r2", 1, "bad displacement operand"},
		{"imm overflow", "addi r1, r0, 70000", 1, "immediate out of range"},
		{"bad equ", ".equ X", 1, ".equ wants"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not contain %q", err, c.frag)
			}
			if got := errorLine(t, c.src); got != c.line {
				t.Errorf("error line = %d, want %d", got, c.line)
			}
		})
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	src := `
		entry:
			addi r1, r0, 100
			addi r2, r0, 0
		loop:
			add  r2, r2, r1
			addi r1, r1, -1
			bne  r1, r0, loop
			halt
	`
	r := assemble(t, src)
	ins, err := isa.DecodeAll(r.Words)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the decoded instructions; images must be identical.
	words, err := isa.EncodeAll(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if words[i] != r.Words[i] {
			t.Errorf("word %d differs after round trip", i)
		}
	}
}

func TestEmptySource(t *testing.T) {
	r := assemble(t, "\n   \n ; nothing\n")
	if len(r.Words) != 0 {
		t.Errorf("words = %d, want 0", len(r.Words))
	}
}
