package vm

import (
	"errors"
	"testing"

	"apbcc/internal/asm"
	"apbcc/internal/isa"
)

// run assembles, executes and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	c := load(t, src)
	if err := c.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func load(t *testing.T, src string) *CPU {
	t.Helper()
	r, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(r.Words)
	if err != nil {
		t.Fatal(err)
	}
	return New(ins, 0)
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul  r3, r1, r2     ; 42
		sub  r4, r3, r1     ; 36
		div  r5, r4, r2     ; 5
		rem  r6, r4, r2     ; 1
		halt
	`)
	want := map[isa.Reg]int32{3: 42, 4: 36, 5: 5, 6: 1}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	c := run(t, `
		addi r1, r0, 0x0ff0
		addi r2, r0, 0x00ff
		and  r3, r1, r2     ; 0x00f0
		or   r4, r1, r2     ; 0x0fff
		xor  r5, r1, r2     ; 0x0f0f
		nor  r6, r0, r0     ; -1
		addi r7, r0, 4
		sll  r8, r2, r7     ; 0x0ff0
		srl  r9, r1, r7     ; 0x00ff
		addi r10, r0, -16
		sra  r11, r10, r7   ; -1
		halt
	`)
	checks := map[isa.Reg]int32{
		3: 0x00f0, 4: 0x0fff, 5: 0x0f0f, 6: -1, 8: 0x0ff0, 9: 0x00ff, 11: -1,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestComparisons(t *testing.T) {
	c := run(t, `
		addi r1, r0, -5
		addi r2, r0, 3
		slt  r3, r1, r2   ; 1 (signed)
		sltu r4, r1, r2   ; 0 (unsigned: big > 3)
		slti r5, r2, 10   ; 1
		halt
	`)
	if c.Regs[3] != 1 || c.Regs[4] != 0 || c.Regs[5] != 1 {
		t.Errorf("slt=%d sltu=%d slti=%d", c.Regs[3], c.Regs[4], c.Regs[5])
	}
}

func TestR0IsZero(t *testing.T) {
	c := run(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Error("r0 not hardwired to zero")
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
		addi r1, r0, 0x1234
		sw   r1, 0(r0)
		lw   r2, 0(r0)
		sh   r1, 8(r0)
		lh   r3, 8(r0)
		sb   r1, 12(r0)
		lb   r4, 12(r0)
		addi r5, r0, -1
		sb   r5, 13(r0)
		lb   r6, 13(r0)    ; sign-extended -1
		halt
	`)
	if c.Regs[2] != 0x1234 || c.Regs[3] != 0x1234 || c.Regs[4] != 0x34 {
		t.Errorf("lw=%#x lh=%#x lb=%#x", c.Regs[2], c.Regs[3], c.Regs[4])
	}
	if c.Regs[6] != -1 {
		t.Errorf("signed lb = %d, want -1", c.Regs[6])
	}
}

func TestLUI(t *testing.T) {
	c := run(t, `
		lui  r1, 2
		ori  r1, r1, 5
		halt
	`)
	if c.Regs[1] != 2<<16|5 {
		t.Errorf("lui+ori = %#x", c.Regs[1])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	c := run(t, `
		; sum 1..10
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestUnsignedBranches(t *testing.T) {
	c := run(t, `
		addi r1, r0, -1     ; 0xffffffff unsigned
		addi r2, r0, 1
		bltu r2, r1, a      ; 1 < huge: taken
		addi r3, r0, 111
	a:
		bgeu r1, r2, b      ; huge >= 1: taken
		addi r4, r0, 222
	b:
		halt
	`)
	if c.Regs[3] != 0 || c.Regs[4] != 0 {
		t.Errorf("unsigned branches not taken: r3=%d r4=%d", c.Regs[3], c.Regs[4])
	}
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
		main:
			addi r4, r0, 5
			jal  double
			add  r10, r0, r4   ; r10 = 10
			jal  double
			add  r11, r0, r4   ; r11 = 20
			halt
		double:
			add  r4, r4, r4
			jr   r31
	`)
	if c.Regs[10] != 10 || c.Regs[11] != 20 {
		t.Errorf("r10=%d r11=%d", c.Regs[10], c.Regs[11])
	}
}

func TestJALR(t *testing.T) {
	c := run(t, `
		addi r1, r0, target
		jalr r2, r1
		halt
	target:
		addi r3, r0, 9
		halt
	`)
	if c.Regs[3] != 9 {
		t.Errorf("jalr did not reach target: r3=%d", c.Regs[3])
	}
	if c.Regs[2] != 2 {
		t.Errorf("jalr link = %d, want 2", c.Regs[2])
	}
}

func TestSyscalls(t *testing.T) {
	c := run(t, `
		addi r4, r0, 42
		sys  1
		addi r4, r0, 'H'
		sys  2
		addi r4, r0, 'i'
		sys  2
		halt
	`)
	if len(c.OutInts) != 1 || c.OutInts[0] != 42 {
		t.Errorf("OutInts = %v", c.OutInts)
	}
	if string(c.OutText) != "Hi" {
		t.Errorf("OutText = %q", c.OutText)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"div zero", "div r1, r2, r0\nhalt", ErrDivZero},
		{"rem zero", "rem r1, r2, r0\nhalt", ErrDivZero},
		{"data range", "lw r1, -4(r0)\nhalt", ErrDataRange},
		{"misaligned", "addi r1, r0, 2\nlw r2, 0(r1)\nhalt", ErrAlign},
		{"bad syscall", "sys 99\nhalt", ErrBadSyscall},
		{"pc range", "addi r1, r0, 1000\njr r1\nhalt", ErrPCRange},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			c := load(t, cse.src)
			err := c.Run(0)
			if !errors.Is(err, cse.want) {
				t.Errorf("err = %v, want %v", err, cse.want)
			}
		})
	}
}

func TestRunOffEndOfImage(t *testing.T) {
	c := load(t, "nop")
	err := c.Run(0)
	if !errors.Is(err, ErrPCRange) {
		t.Errorf("err = %v, want ErrPCRange", err)
	}
}

func TestMaxSteps(t *testing.T) {
	c := load(t, "loop: j loop")
	if err := c.Run(100); !errors.Is(err, ErrMaxSteps) {
		t.Errorf("err = %v, want ErrMaxSteps", err)
	}
}

func TestHaltedIsSticky(t *testing.T) {
	c := run(t, "halt")
	if !c.Halted() {
		t.Fatal("not halted")
	}
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("step after halt = %v", err)
	}
}

func TestOnTransferHook(t *testing.T) {
	c := load(t, `
		addi r1, r0, 2
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		j    done
		nop
	done:
		halt
	`)
	var transfers [][2]int
	c.OnTransfer = func(from, to int) { transfers = append(transfers, [2]int{from, to}) }
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// Taken: bne once (2 -> 1 loop back), then j done. The final bne
	// falls through (not a transfer).
	if len(transfers) != 2 {
		t.Fatalf("transfers = %v", transfers)
	}
	if transfers[0] != [2]int{2, 1} {
		t.Errorf("first transfer = %v", transfers[0])
	}
	if transfers[1][1] != 5 {
		t.Errorf("second transfer = %v", transfers[1])
	}
}

func TestDataPreload(t *testing.T) {
	c := load(t, `
		lw r1, 0(r0)
		lw r2, 4(r0)
		add r3, r1, r2
		halt
	`)
	isa.ByteOrder.PutUint32(c.Data()[0:], 40)
	isa.ByteOrder.PutUint32(c.Data()[4:], 2)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 42 {
		t.Errorf("r3 = %d", c.Regs[3])
	}
}
