// Package vm interprets ERI32 programs: a 32-register CPU with a
// Harvard memory layout (instruction fetch from a code image, loads and
// stores against a separate data memory). The interpreter executes the
// real instruction semantics, so programs compute real results — the
// substrate that lets the reproduction verify end-to-end that code run
// under the compression runtime behaves exactly like code run from a
// plain image, and that lets real executions (rather than probabilistic
// walks) produce the block access patterns the runtime consumes.
//
// The VM is deliberately simple: no pipeline, no MMU; one instruction
// per Step. Control-flow hooks let a caller observe every taken
// transfer, which is how internal/machine drives the compression
// runtime.
package vm

import (
	"errors"
	"fmt"

	"apbcc/internal/isa"
)

// Default memory sizing.
const (
	// DefaultDataSize is the data memory size in bytes.
	DefaultDataSize = 1 << 16
	// DefaultMaxSteps bounds Run against runaway programs.
	DefaultMaxSteps = 10_000_000
)

// Execution errors.
var (
	ErrHalted     = errors.New("vm: halted")
	ErrPCRange    = errors.New("vm: PC outside code image")
	ErrDataRange  = errors.New("vm: data access out of range")
	ErrAlign      = errors.New("vm: misaligned data access")
	ErrDivZero    = errors.New("vm: division by zero")
	ErrMaxSteps   = errors.New("vm: step budget exhausted")
	ErrBadSyscall = errors.New("vm: unknown syscall")
)

// Syscall numbers for the sys instruction.
const (
	// SysPutInt appends the value of r4 to the VM's output log.
	SysPutInt = 1
	// SysPutChar appends the low byte of r4 to the VM's output text.
	SysPutChar = 2
)

// CPU is one ERI32 hardware thread plus its data memory.
type CPU struct {
	Regs [isa.NumRegs]int32
	PC   int // word index into the code image

	code []isa.Instruction
	data []byte

	// Steps counts executed instructions.
	Steps int64
	// OutInts collects SysPutInt values; OutText collects SysPutChar
	// bytes.
	OutInts []int32
	OutText []byte

	// OnTransfer, when non-nil, is called for every control transfer
	// that actually redirects the PC (taken branches, jumps, calls,
	// indirect jumps), with the word index of the instruction and the
	// target word index.
	OnTransfer func(fromPC, toPC int)

	halted bool
}

// New builds a CPU over a decoded code image with a data memory of
// dataSize bytes (DefaultDataSize if 0).
func New(code []isa.Instruction, dataSize int) *CPU {
	if dataSize <= 0 {
		dataSize = DefaultDataSize
	}
	return &CPU{code: code, data: make([]byte, dataSize)}
}

// Data exposes the data memory (e.g. to preload inputs).
func (c *CPU) Data() []byte { return c.data }

// Halted reports whether the CPU has executed halt.
func (c *CPU) Halted() bool { return c.halted }

// reg reads a register; r0 is hardwired to zero.
func (c *CPU) reg(r isa.Reg) int32 {
	if r == 0 {
		return 0
	}
	return c.Regs[r]
}

// setReg writes a register; writes to r0 are discarded.
func (c *CPU) setReg(r isa.Reg, v int32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// Step executes one instruction. It returns ErrHalted once the program
// has executed halt.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.PC < 0 || c.PC >= len(c.code) {
		return fmt.Errorf("%w: %d", ErrPCRange, c.PC)
	}
	in := c.code[c.PC]
	next := c.PC + 1
	transferred := false

	switch in.Op {
	case isa.OpADD:
		c.setReg(in.Rd, c.reg(in.Rs1)+c.reg(in.Rs2))
	case isa.OpSUB:
		c.setReg(in.Rd, c.reg(in.Rs1)-c.reg(in.Rs2))
	case isa.OpAND:
		c.setReg(in.Rd, c.reg(in.Rs1)&c.reg(in.Rs2))
	case isa.OpOR:
		c.setReg(in.Rd, c.reg(in.Rs1)|c.reg(in.Rs2))
	case isa.OpXOR:
		c.setReg(in.Rd, c.reg(in.Rs1)^c.reg(in.Rs2))
	case isa.OpNOR:
		c.setReg(in.Rd, ^(c.reg(in.Rs1) | c.reg(in.Rs2)))
	case isa.OpSLL:
		c.setReg(in.Rd, c.reg(in.Rs1)<<(uint32(c.reg(in.Rs2))&31))
	case isa.OpSRL:
		c.setReg(in.Rd, int32(uint32(c.reg(in.Rs1))>>(uint32(c.reg(in.Rs2))&31)))
	case isa.OpSRA:
		c.setReg(in.Rd, c.reg(in.Rs1)>>(uint32(c.reg(in.Rs2))&31))
	case isa.OpSLT:
		c.setReg(in.Rd, boolToInt(c.reg(in.Rs1) < c.reg(in.Rs2)))
	case isa.OpSLTU:
		c.setReg(in.Rd, boolToInt(uint32(c.reg(in.Rs1)) < uint32(c.reg(in.Rs2))))
	case isa.OpMUL:
		c.setReg(in.Rd, c.reg(in.Rs1)*c.reg(in.Rs2))
	case isa.OpDIV:
		if c.reg(in.Rs2) == 0 {
			return fmt.Errorf("%w at pc %d", ErrDivZero, c.PC)
		}
		c.setReg(in.Rd, c.reg(in.Rs1)/c.reg(in.Rs2))
	case isa.OpREM:
		if c.reg(in.Rs2) == 0 {
			return fmt.Errorf("%w at pc %d", ErrDivZero, c.PC)
		}
		c.setReg(in.Rd, c.reg(in.Rs1)%c.reg(in.Rs2))

	case isa.OpADDI:
		c.setReg(in.Rd, c.reg(in.Rs1)+in.Imm)
	case isa.OpANDI:
		c.setReg(in.Rd, c.reg(in.Rs1)&in.Imm)
	case isa.OpORI:
		c.setReg(in.Rd, c.reg(in.Rs1)|in.Imm)
	case isa.OpXORI:
		c.setReg(in.Rd, c.reg(in.Rs1)^in.Imm)
	case isa.OpSLTI:
		c.setReg(in.Rd, boolToInt(c.reg(in.Rs1) < in.Imm))
	case isa.OpLUI:
		c.setReg(in.Rd, in.Imm<<16)

	case isa.OpLW:
		v, err := c.load(in, 4)
		if err != nil {
			return err
		}
		c.setReg(in.Rd, int32(v))
	case isa.OpLH:
		v, err := c.load(in, 2)
		if err != nil {
			return err
		}
		c.setReg(in.Rd, int32(int16(v)))
	case isa.OpLB:
		v, err := c.load(in, 1)
		if err != nil {
			return err
		}
		c.setReg(in.Rd, int32(int8(v)))
	case isa.OpSW:
		if err := c.store(in, 4); err != nil {
			return err
		}
	case isa.OpSH:
		if err := c.store(in, 2); err != nil {
			return err
		}
	case isa.OpSB:
		if err := c.store(in, 1); err != nil {
			return err
		}

	case isa.OpBEQ:
		transferred = c.branch(in, &next, c.reg(in.Rs1) == c.reg(in.Rs2))
	case isa.OpBNE:
		transferred = c.branch(in, &next, c.reg(in.Rs1) != c.reg(in.Rs2))
	case isa.OpBLT:
		transferred = c.branch(in, &next, c.reg(in.Rs1) < c.reg(in.Rs2))
	case isa.OpBGE:
		transferred = c.branch(in, &next, c.reg(in.Rs1) >= c.reg(in.Rs2))
	case isa.OpBLTU:
		transferred = c.branch(in, &next, uint32(c.reg(in.Rs1)) < uint32(c.reg(in.Rs2)))
	case isa.OpBGEU:
		transferred = c.branch(in, &next, uint32(c.reg(in.Rs1)) >= uint32(c.reg(in.Rs2)))

	case isa.OpJ:
		next = int(in.Imm)
		transferred = true
	case isa.OpJAL:
		c.setReg(31, int32(c.PC+1))
		next = int(in.Imm)
		transferred = true
	case isa.OpJR:
		next = int(c.reg(in.Rs1))
		transferred = true
	case isa.OpJALR:
		c.setReg(in.Rd, int32(c.PC+1))
		next = int(c.reg(in.Rs1))
		transferred = true

	case isa.OpNOP:
	case isa.OpHALT:
		c.halted = true
		c.Steps++
		return nil
	case isa.OpSYS:
		switch in.Imm {
		case SysPutInt:
			c.OutInts = append(c.OutInts, c.reg(4))
		case SysPutChar:
			c.OutText = append(c.OutText, byte(c.reg(4)))
		default:
			return fmt.Errorf("%w: %d at pc %d", ErrBadSyscall, in.Imm, c.PC)
		}
	default:
		return fmt.Errorf("vm: unimplemented opcode %v at pc %d", in.Op, c.PC)
	}

	if transferred && c.OnTransfer != nil {
		c.OnTransfer(c.PC, next)
	}
	c.PC = next
	c.Steps++
	return nil
}

// branch resolves a conditional branch, returning whether it was taken.
func (c *CPU) branch(in isa.Instruction, next *int, taken bool) bool {
	if !taken {
		return false
	}
	tgt, _ := in.StaticTarget(c.PC)
	*next = tgt
	return true
}

// addr computes and checks a data address.
func (c *CPU) addr(in isa.Instruction, size int) (int, error) {
	a := int(c.reg(in.Rs1) + in.Imm)
	if a < 0 || a+size > len(c.data) {
		return 0, fmt.Errorf("%w: %d at pc %d", ErrDataRange, a, c.PC)
	}
	if a%size != 0 {
		return 0, fmt.Errorf("%w: %d (size %d) at pc %d", ErrAlign, a, size, c.PC)
	}
	return a, nil
}

func (c *CPU) load(in isa.Instruction, size int) (uint32, error) {
	a, err := c.addr(in, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint32(c.data[a]), nil
	case 2:
		return uint32(isa.ByteOrder.Uint16(c.data[a:])), nil
	default:
		return isa.ByteOrder.Uint32(c.data[a:]), nil
	}
}

func (c *CPU) store(in isa.Instruction, size int) error {
	a, err := c.addr(in, size)
	if err != nil {
		return err
	}
	v := uint32(c.reg(in.Rd))
	switch size {
	case 1:
		c.data[a] = byte(v)
	case 2:
		isa.ByteOrder.PutUint16(c.data[a:], uint16(v))
	default:
		isa.ByteOrder.PutUint32(c.data[a:], v)
	}
	return nil
}

// Run steps until halt, an error, or maxSteps instructions
// (DefaultMaxSteps if 0).
func (c *CPU) Run(maxSteps int64) error {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	for !c.halted {
		if c.Steps >= maxSteps {
			return fmt.Errorf("%w (%d)", ErrMaxSteps, maxSteps)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

func boolToInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
