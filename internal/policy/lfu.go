package policy

import (
	"cmp"

	"apbcc/internal/cfg"
)

// LFU keeps the most frequently used entries resident: the victim is
// the entry with the fewest lifetime accesses, ties broken by least
// recent use and then by lowest key. Expiry and prefetch follow the
// bound environment exactly like PaperKLRU — the k-edge algorithm and
// the Figure 3 strategy are the paper's contribution and stay fixed
// across replacement policies so the E4 comparison isolates victim
// selection.
//
// In closed key universes (ExpireK > 0) frequency survives removal, so
// a hot loop that was deleted during a cold phase re-enters with its
// history; in open universes frequency restarts with each admission
// (classic cache LFU).
type LFU[K cmp.Ordered] struct {
	t table[K]
}

// NewLFU builds a least-frequently-used policy; Bind before use.
func NewLFU[K cmp.Ordered]() *LFU[K] { return &LFU[K]{} }

// Name implements Policy.
func (p *LFU[K]) Name() string { return "lfu" }

// Bind implements Policy.
func (p *LFU[K]) Bind(env Env) { p.t.init(env) }

// Admit implements Policy: always cache.
func (p *LFU[K]) Admit(key K, m Meta) bool { return true }

// OnInsert implements Policy.
func (p *LFU[K]) OnInsert(key K, m Meta, now int64) { p.t.insert(key, m, now) }

// OnAccess implements Policy.
func (p *LFU[K]) OnAccess(key K, now int64) { p.t.access(key, now) }

// OnRemove implements Policy.
func (p *LFU[K]) OnRemove(key K) { p.t.remove(key) }

// Tick implements Policy.
func (p *LFU[K]) Tick(fresh K, now int64) []K { return p.t.tick(fresh, now) }

// Victim implements Policy: lowest frequency, then least recent use,
// then lowest key.
func (p *LFU[K]) Victim(evictable func(K) bool) (K, bool) {
	var victim K
	var vrec *record
	p.t.scan(evictable, func(key K, r *record) {
		if vrec == nil || r.freq < vrec.freq ||
			(r.freq == vrec.freq && r.lastUse < vrec.lastUse) {
			victim, vrec = key, r
		}
	})
	return victim, vrec != nil
}

// OldestUse implements Policy.
func (p *LFU[K]) OldestUse(evictable func(K) bool) (int64, bool) {
	return p.t.oldestUse(evictable)
}

// PrefetchCandidates implements Policy (same strategy dispatch as
// PaperKLRU).
func (p *LFU[K]) PrefetchCandidates(anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID {
	return strategyCandidates(&p.t.env, anchor, compressed)
}

// ObserveEdge implements Policy.
func (p *LFU[K]) ObserveEdge(from, to cfg.BlockID) { strategyObserve(&p.t.env, from, to) }
