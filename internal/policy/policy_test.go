package policy

import (
	"reflect"
	"testing"

	"apbcc/internal/cfg"
	"apbcc/internal/compress"
	"apbcc/internal/trace"
)

func bound[K interface{ ~int | ~string }](t *testing.T, name string, env Env) Policy[K] {
	t.Helper()
	p, err := New[K](name)
	if err != nil {
		t.Fatal(err)
	}
	p.Bind(env)
	return p
}

func all[K interface{ ~int | ~string }](K) bool { return true }

// TestVictimTieBreaksByLowestKey is the regression test for the
// eviction tie-break: entries with equal recency (here: two prefetched
// copies that never executed, both carrying lastUse 0) must yield a
// deterministic victim — the lowest key — never one that depends on
// map iteration order. The differential sim/rt test relies on this.
func TestVictimTieBreaksByLowestKey(t *testing.T) {
	for _, name := range Names() {
		p := bound[int](t, name, Env{ExpireK: 4})
		// Insertion order deliberately descending and interleaved.
		for _, k := range []int{7, 3, 9, 5} {
			p.OnInsert(k, Meta{Bytes: 64, Cost: 100}, 10)
		}
		v, ok := p.Victim(all[int])
		if !ok || v != 3 {
			t.Errorf("%s: victim = %d,%v want 3,true (lowest key on tie)", name, v, ok)
		}
		// Excluding the tied winner must fall to the next lowest.
		v, ok = p.Victim(func(k int) bool { return k != 3 })
		if !ok || v != 5 {
			t.Errorf("%s: victim excluding 3 = %d,%v want 5,true", name, v, ok)
		}
	}
}

func TestVictimRespectsEvictableFilter(t *testing.T) {
	p := bound[int](t, "klru", Env{ExpireK: 4})
	p.OnInsert(1, Meta{Bytes: 8}, 1)
	p.OnAccess(1, 1)
	if _, ok := p.Victim(func(int) bool { return false }); ok {
		t.Error("victim found with nothing evictable")
	}
	if _, ok := p.Victim(all[int]); !ok {
		t.Error("no victim with one evictable entry")
	}
}

func TestKLRUVictimIsLeastRecentlyUsed(t *testing.T) {
	p := bound[int](t, "klru", Env{ExpireK: 100})
	for k := 1; k <= 3; k++ {
		p.OnInsert(k, Meta{Bytes: 8}, int64(k))
		p.OnAccess(k, int64(k))
	}
	p.OnAccess(1, 9) // 2 is now the oldest
	if v, ok := p.Victim(all[int]); !ok || v != 2 {
		t.Errorf("victim = %d want 2", v)
	}
	if c, ok := p.OldestUse(all[int]); !ok || c != 2 {
		t.Errorf("OldestUse = %d want 2", c)
	}
}

// TestTickExpiryMatchesKEdge checks the Section 3 counter semantics:
// an entry expires on the k-th edge after its last access, never-
// accessed entries are exempt unless Strict, and the fresh key is
// always exempt.
func TestTickExpiryMatchesKEdge(t *testing.T) {
	p := bound[int](t, "klru", Env{ExpireK: 3})
	p.OnInsert(1, Meta{Bytes: 8}, 1)
	p.OnAccess(1, 1)
	p.OnInsert(2, Meta{Bytes: 8}, 1) // prefetched, never accessed

	// The caller's side of the contract: expired keys are removed.
	drain := func(p Policy[int], lastNow int64) []int {
		var expired []int
		for now := int64(2); now <= lastNow; now++ {
			for _, k := range p.Tick(99, now) {
				expired = append(expired, k)
				p.OnRemove(k)
			}
		}
		return expired
	}
	// Entry 1 was last accessed at clock 1: edges 2,3,4 age it to 3.
	if expired := drain(p, 5); !reflect.DeepEqual(expired, []int{1}) {
		t.Errorf("expired = %v want [1] (entry 2 never accessed)", expired)
	}

	strict := bound[int](t, "klru", Env{ExpireK: 3, Strict: true})
	strict.OnInsert(2, Meta{Bytes: 8}, 1)
	if sExpired := drain(strict, 5); !reflect.DeepEqual(sExpired, []int{2}) {
		t.Errorf("strict expired = %v want [2]", sExpired)
	}
}

func TestTickExemptsFreshKey(t *testing.T) {
	p := bound[int](t, "klru", Env{ExpireK: 1})
	p.OnInsert(1, Meta{Bytes: 8}, 1)
	p.OnAccess(1, 1)
	if exp := p.Tick(1, 2); len(exp) != 0 {
		t.Errorf("fresh key expired: %v", exp)
	}
	if exp := p.Tick(2, 3); !reflect.DeepEqual(exp, []int{1}) {
		t.Errorf("expired = %v want [1]", exp)
	}
}

// TestKLRURetainsRecencyAcrossLifetimes pins the closed-universe
// retention rule the seed Manager's per-unit fields implied: a unit
// deleted and later re-prefetched keeps its last-execution time, so
// it does not masquerade as never-used.
func TestKLRURetainsRecencyAcrossLifetimes(t *testing.T) {
	p := bound[int](t, "klru", Env{ExpireK: 4})
	p.OnInsert(1, Meta{Bytes: 8}, 1)
	p.OnAccess(1, 5)
	p.OnRemove(1)
	p.OnInsert(1, Meta{Bytes: 8}, 7) // re-prefetch, no access yet
	p.OnInsert(2, Meta{Bytes: 8}, 7)
	p.OnAccess(2, 7)
	// Key 1 carries lastUse 5 from its previous life; key 2 was used at
	// 7 — so 1 is the victim, NOT because it is never-used (lastUse 0).
	if c, ok := p.OldestUse(all[int]); !ok || c != 5 {
		t.Errorf("OldestUse = %d want 5 (retained across lifetimes)", c)
	}
	// Open universe (ExpireK 0): the record is gone after removal, and
	// re-insertion ranks as a fresh use (list-LRU semantics) — the old
	// timestamp (5) is forgotten, not resurrected.
	q := bound[string](t, "klru", Env{})
	q.OnInsert("a", Meta{Bytes: 8}, 1)
	q.OnAccess("a", 5)
	q.OnRemove("a")
	q.OnInsert("a", Meta{Bytes: 8}, 7)
	if c, ok := q.OldestUse(all[string]); !ok || c != 7 {
		t.Errorf("open-universe OldestUse = %d want 7 (insert is first use)", c)
	}
}

func TestLFUVictimIsLeastFrequent(t *testing.T) {
	p := bound[int](t, "lfu", Env{ExpireK: 100})
	p.OnInsert(1, Meta{Bytes: 8}, 1)
	p.OnInsert(2, Meta{Bytes: 8}, 1)
	for i := 0; i < 5; i++ {
		p.OnAccess(1, int64(2+i))
	}
	p.OnAccess(2, 10) // recent but rare
	if v, ok := p.Victim(all[int]); !ok || v != 2 {
		t.Errorf("victim = %d want 2 (least frequent beats least recent)", v)
	}
}

func TestCostAwareKeepsExpensiveBytes(t *testing.T) {
	p := bound[int](t, "cost-aware", Env{ExpireK: 100})
	// Same size, same recency: entry 1 is cheap to rebuild, entry 2
	// expensive — the cheap one goes first.
	p.OnInsert(1, Meta{Bytes: 100, Cost: 100}, 1)
	p.OnAccess(1, 2)
	p.OnInsert(2, Meta{Bytes: 100, Cost: 10000}, 1)
	p.OnAccess(2, 2)
	if v, ok := p.Victim(all[int]); !ok || v != 1 {
		t.Errorf("victim = %d want 1 (lowest cost density)", v)
	}
	p.OnRemove(1)
	// GreedyDual aging: after the eviction inflated the floor, a new
	// cheap-but-fresh entry outranks the stale expensive one... until
	// the expensive one is touched again.
	p.OnInsert(3, Meta{Bytes: 100, Cost: 50}, 3)
	p.OnAccess(3, 3)
	v, ok := p.Victim(all[int])
	if !ok {
		t.Fatal("no victim")
	}
	if v != 3 {
		// H(2) = 100 ≫ H(3) = floor(1) + 0.5 — 3 must lose despite recency.
		t.Errorf("victim = %d want 3 (floor-adjusted cost)", v)
	}
}

func TestMarkovPrefetchBeam(t *testing.T) {
	// Diamond: A -> B (0.9) | C (0.1); B,C -> D.
	g := cfg.New()
	a := g.AddBlock("A", 4)
	b := g.AddBlock("B", 4)
	c := g.AddBlock("C", 4)
	d := g.AddBlock("D", 4)
	g.MustAddEdge(a, b, cfg.EdgeTaken, 0.9)
	g.MustAddEdge(a, c, cfg.EdgeFallthrough, 0.1)
	g.MustAddEdge(b, d, cfg.EdgeJump, 1)
	g.MustAddEdge(c, d, cfg.EdgeJump, 1)

	p := NewMarkovPrefetch[int]()
	p.Bind(Env{Graph: g, ExpireK: 4, LookaheadK: 2})
	got := p.PrefetchCandidates(a, nil)
	// Path probs within 2 edges: D=0.9+? max path 0.9 (via B), B=0.9,
	// C=0.1. Width 2 keeps the two best: {B or D first}, C dropped only
	// if beam full — C has prob 0.1 >= MinProb but Width=2 trims it.
	if len(got) != 2 {
		t.Fatalf("candidates = %v want 2 entries", got)
	}
	for _, id := range got {
		if id != b && id != d {
			t.Errorf("unexpected candidate %v (want B and D)", id)
		}
	}
	// The predictor adapts: after observing only A->C edges, C must
	// enter the beam.
	for i := 0; i < 32; i++ {
		p.ObserveEdge(a, c)
		p.ObserveEdge(c, d)
	}
	got = p.PrefetchCandidates(a, nil)
	found := false
	for _, id := range got {
		if id == c {
			found = true
		}
	}
	if !found {
		t.Errorf("after training, candidates = %v want C included", got)
	}
}

func TestMarkovPrefetchHonorsCompressedFilter(t *testing.T) {
	g := cfg.New()
	a := g.AddBlock("A", 4)
	b := g.AddBlock("B", 4)
	g.MustAddEdge(a, b, cfg.EdgeJump, 1)
	p := NewMarkovPrefetch[int]()
	p.Bind(Env{Graph: g, ExpireK: 4})
	if got := p.PrefetchCandidates(a, func(cfg.BlockID) bool { return false }); len(got) != 0 {
		t.Errorf("candidates = %v want none (all resident)", got)
	}
}

func TestStrategyDispatch(t *testing.T) {
	g := cfg.New()
	a := g.AddBlock("A", 4)
	b := g.AddBlock("B", 4)
	c := g.AddBlock("C", 4)
	g.MustAddEdge(a, b, cfg.EdgeTaken, 0.8)
	g.MustAddEdge(a, c, cfg.EdgeFallthrough, 0.2)

	klru := bound[int](t, "klru", Env{Graph: g, Mode: PrefetchNone, LookaheadK: 1, ExpireK: 4})
	if got := klru.PrefetchCandidates(a, nil); got != nil {
		t.Errorf("on-demand candidates = %v want nil", got)
	}

	allMode := bound[int](t, "klru", Env{Graph: g, Mode: PrefetchAll, LookaheadK: 1, ExpireK: 4})
	if got := allMode.PrefetchCandidates(a, nil); len(got) != 2 {
		t.Errorf("pre-all candidates = %v want B and C", got)
	}

	best := bound[int](t, "klru", Env{
		Graph: g, Mode: PrefetchBest, LookaheadK: 1, ExpireK: 4,
		Predictor: trace.NewStatic(g),
	})
	got := best.PrefetchCandidates(a, func(cfg.BlockID) bool { return true })
	if len(got) != 1 || got[0] != b {
		t.Errorf("pre-single candidates = %v want [B]", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New[int](name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%q: empty name", name)
		}
	}
	if p, err := New[int](""); err != nil || p.Name() != "klru" {
		t.Errorf("default policy = %v, %v want klru", p, err)
	}
	if _, err := New[int]("belady"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestEnvCostModelPlumbs sanity-checks that a bound cost model is
// usable by cost-aware metas end to end.
func TestEnvCostModelPlumbs(t *testing.T) {
	cost := compress.CostModel{DecompressFixed: 10, DecompressPerByte: 2}
	p := bound[int](t, "cost-aware", Env{ExpireK: 4, Cost: cost})
	p.OnInsert(1, Meta{Bytes: 4, Cost: cost.DecompressCycles(4)}, 1)
	p.OnInsert(2, Meta{Bytes: 400, Cost: cost.DecompressCycles(400)}, 1)
	// Density: unit 1 = 18/4 = 4.5; unit 2 = 810/400 ≈ 2 — bigger unit
	// has lower cost density, goes first.
	if v, ok := p.Victim(all[int]); !ok || v != 2 {
		t.Errorf("victim = %d want 2", v)
	}
}
