package policy

import (
	"cmp"

	"apbcc/internal/cfg"
)

// PaperKLRU is the paper's own policy, extracted verbatim from the
// seed Manager and behavior-preserving against it (the seed-golden
// differential test in internal/sim pins the exact event stream):
//
//   - expiry: the k-edge compression algorithm — an entry's counter
//     resets on access and advances on every other traversed edge; at
//     ExpireK the entry is deleted (Section 3; Strict applies the
//     literal Section 5 reading that ages never-executed prefetched
//     copies too);
//   - victim selection: least-recently-used, with never-accessed
//     entries (lastUse 0) evicted first and ties broken by lowest key
//     (Section 2's budget note);
//   - prefetch: the configured Figure 3 strategy — everything within
//     LookaheadK edges (PrefetchAll), or the single most probable
//     block within LookaheadK under the bound predictor
//     (PrefetchBest, the pre-decompress-single decision procedure);
//   - admission: everything (the handler must place the copy it just
//     decompressed).
//
// With ExpireK == 0 the expiry half disappears and PaperKLRU is plain
// LRU — the service cache's default, byte-compatible with the list
// LRU it replaces.
type PaperKLRU[K cmp.Ordered] struct {
	t table[K]
}

// NewPaperKLRU builds the default policy; Bind before use.
func NewPaperKLRU[K cmp.Ordered]() *PaperKLRU[K] { return &PaperKLRU[K]{} }

// Name implements Policy.
func (p *PaperKLRU[K]) Name() string { return "klru" }

// Bind implements Policy.
func (p *PaperKLRU[K]) Bind(env Env) { p.t.init(env) }

// Admit implements Policy: always cache.
func (p *PaperKLRU[K]) Admit(key K, m Meta) bool { return true }

// OnInsert implements Policy.
func (p *PaperKLRU[K]) OnInsert(key K, m Meta, now int64) { p.t.insert(key, m, now) }

// OnAccess implements Policy.
func (p *PaperKLRU[K]) OnAccess(key K, now int64) { p.t.access(key, now) }

// OnRemove implements Policy.
func (p *PaperKLRU[K]) OnRemove(key K) { p.t.remove(key) }

// Tick implements Policy: the k-edge counter advance.
func (p *PaperKLRU[K]) Tick(fresh K, now int64) []K { return p.t.tick(fresh, now) }

// Victim implements Policy: strict least-recently-used, ties to the
// lowest key (the scan ascends and only a strictly older entry
// displaces the champion).
func (p *PaperKLRU[K]) Victim(evictable func(K) bool) (K, bool) {
	var victim K
	var vrec *record
	p.t.scan(evictable, func(key K, r *record) {
		if vrec == nil || r.lastUse < vrec.lastUse {
			victim, vrec = key, r
		}
	})
	return victim, vrec != nil
}

// OldestUse implements Policy.
func (p *PaperKLRU[K]) OldestUse(evictable func(K) bool) (int64, bool) {
	return p.t.oldestUse(evictable)
}

// PrefetchCandidates implements Policy per the bound PrefetchMode.
func (p *PaperKLRU[K]) PrefetchCandidates(anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID {
	return strategyCandidates(&p.t.env, anchor, compressed)
}

// ObserveEdge implements Policy: under PrefetchBest the bound
// predictor learns the taken edge (after the edge's prediction, as in
// the seed runtime).
func (p *PaperKLRU[K]) ObserveEdge(from, to cfg.BlockID) {
	strategyObserve(&p.t.env, from, to)
}
