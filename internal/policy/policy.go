// Package policy is the pluggable replacement-and-prefetch engine
// shared by every layer that keeps decompressed (or compressed) block
// copies under a byte budget: the core runtime Manager, the cycle
// simulator and concurrent runtime built on it, the multi-application
// coordinator, and the serving subsystem's block cache.
//
// The paper's scheme is, at heart, one such policy — k-edge expiry
// counters, LRU victim selection under a budget, predictor-driven
// pre-decompression — but it occupies a small corner of a large design
// space. Extracting the decisions behind an interface lets the same
// runtime run cost-aware eviction in the spirit of compression-aware
// memory management (Pekhimenko et al.) or deeper Markov prefetching,
// and lets the server's cache run the embedded runtime's policies.
//
// # Interface contract
//
// A Policy tracks a set of resident entries identified by ordered keys
// (compression-unit IDs in the runtime, content addresses in the
// service cache) and answers four kinds of questions:
//
//   - Observe hooks — OnInsert/OnAccess/OnRemove keep the policy's
//     view of residency and recency in sync with the caller, fed by
//     the caller's logical clock (the edge clock in the runtime, a
//     per-shard operation counter in the cache). Tick advances that
//     clock across one edge and returns the keys whose lifetime ended
//     (the k-edge expiry set); the caller must then remove them.
//   - Victim selection — Victim picks the next entry to discard among
//     those the caller marks evictable. Selection is deterministic:
//     ties always break toward the lowest key, so a simulator and a
//     concurrent runtime replaying the same edge stream evict
//     identically.
//   - Admission — Admit may veto caching an entry entirely (cheap,
//     large values can be worth recomputing rather than caching).
//   - Prefetch scoring — PrefetchCandidates proposes blocks to
//     pre-decompress after execution crosses an edge, best candidate
//     first; ObserveEdge feeds the traversed edge back so online
//     predictors adapt.
//
// Callers hold their own lock around every method; implementations are
// not concurrency-safe and carry per-run state, so one Policy value
// must not be shared between two Managers, shards or runs.
//
// # Key retention
//
// When Env.ExpireK > 0 the key universe is closed (the fixed unit set
// of one program) and records survive removal: a unit that is deleted
// and later re-prefetched keeps its last-execution timestamp and
// frequency, exactly as the seed Manager's per-unit fields did. When
// ExpireK == 0 (open universes such as the content-addressed cache)
// records are dropped on removal so the policy's memory stays
// proportional to the resident set.
package policy

import (
	"cmp"
	"fmt"
	"sort"

	"apbcc/internal/cfg"
	"apbcc/internal/compress"
	"apbcc/internal/trace"
)

// Meta describes one entry at admission/insert time.
type Meta struct {
	// Bytes is the entry's resident size: the decompressed copy in the
	// runtime, the cached payload in the service.
	Bytes int
	// Cost is the price of re-producing the entry after discarding it
	// — modeled decompression cycles for a unit, modeled compression
	// cycles for a cached block. Cost-aware policies keep expensive
	// bytes resident longer.
	Cost int64
}

// PrefetchMode tells a policy which prefetch decision the runtime's
// configured strategy expects (the paper's Figure 3 axis). Policies
// with their own prefetch scheme (MarkovPrefetch) may ignore it.
type PrefetchMode uint8

// Prefetch modes.
const (
	// PrefetchNone: on-demand operation; propose nothing.
	PrefetchNone PrefetchMode = iota
	// PrefetchAll: propose every block within LookaheadK edges
	// (pre-decompress-all).
	PrefetchAll
	// PrefetchBest: propose the single most probable block within
	// LookaheadK edges (pre-decompress-single).
	PrefetchBest
)

// Env is the read-only world a policy is bound to before use. Cache
// deployments leave the graph fields zero; prefetch hooks then return
// nil.
type Env struct {
	// Graph is the program CFG (prefetch scoring); nil in caches.
	Graph *cfg.Graph
	// Predictor supplies edge probabilities for prefetch scoring.
	// Policies that need one build their own when nil.
	Predictor trace.Predictor
	// Mode is the configured prefetch strategy.
	Mode PrefetchMode
	// LookaheadK is the prefetch lookahead depth (decompress-k).
	LookaheadK int
	// ExpireK is the k-edge expiry parameter (compress-k); 0 disables
	// expiry (and switches to open-universe key retention).
	ExpireK int
	// Strict ages entries that have not been accessed since insertion
	// (the literal Section 5 counter reading); the default ages only
	// entries the execution thread has visited (Section 3).
	Strict bool
	// Cost is the bound codec's cycle cost model, for policies that
	// weigh time against bytes.
	Cost compress.CostModel
}

// Policy decides replacement, admission, expiry and prefetch for one
// set of resident entries. See the package comment for the contract.
type Policy[K cmp.Ordered] interface {
	// Name identifies the policy in flags, reports and bench tables.
	Name() string
	// Bind gives the policy its environment; call once before use.
	Bind(env Env)

	// Admit reports whether a new entry is worth placing at all. It is
	// consulted for optional placements only — prefetch issues in the
	// runtime, fills in the cache; demand decompression cannot be
	// vetoed (execution needs the copy regardless).
	Admit(key K, m Meta) bool
	// OnInsert registers a resident entry (admission already decided).
	OnInsert(key K, m Meta, now int64)
	// OnAccess records a use of a resident entry.
	OnAccess(key K, now int64)
	// OnRemove unregisters an entry however it left: k-edge expiry,
	// eviction, or deletion.
	OnRemove(key K)
	// Tick advances the clock across one traversed edge; fresh is the
	// key accessed on that edge (exempt from aging). It returns the
	// keys whose lifetime ended, lowest first; the caller removes
	// them. Policies without expiry return nil.
	Tick(fresh K, now int64) []K

	// Victim picks the entry to discard next among resident entries
	// for which evictable returns true; ok is false when none
	// qualifies.
	Victim(evictable func(K) bool) (victim K, ok bool)
	// OldestUse returns the last-access clock of the least-recently
	// used evictable entry. All policies track recency regardless of
	// their victim rule; cross-runtime coordinators (internal/multi)
	// compare this value across applications.
	OldestUse(evictable func(K) bool) (clock int64, ok bool)

	// PrefetchCandidates proposes blocks to pre-decompress after
	// execution crosses the edge ending at anchor, best first.
	// compressed reports whether a block currently lacks a copy.
	PrefetchCandidates(anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID
	// ObserveEdge feeds the policy the edge actually traversed, after
	// PrefetchCandidates for that edge.
	ObserveEdge(from, to cfg.BlockID)
}

// Names lists the registered policy names, sorted; these are the
// values the -policy flags accept.
func Names() []string {
	return []string{"cost-aware", "klru", "lfu", "markov-prefetch"}
}

// New builds a policy by name with default parameters. The empty name
// selects the paper's k-edge LRU. Callers Bind the result before use.
func New[K cmp.Ordered](name string) (Policy[K], error) {
	switch name {
	case "", "klru", "paper":
		return NewPaperKLRU[K](), nil
	case "lfu":
		return NewLFU[K](), nil
	case "cost-aware", "cost":
		return NewCostAware[K](), nil
	case "markov-prefetch", "markov":
		return NewMarkovPrefetch[K](), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
}

// record is the per-key state shared by the built-in policies. Only
// the fields a concrete policy reads are meaningful under it.
type record struct {
	resident bool
	accessed bool    // accessed since (re)insertion
	counter  int     // edges since last access (k-edge expiry)
	lastUse  int64   // clock of last access; 0 = never accessed
	freq     int64   // lifetime access count (LFU)
	bytes    int     // resident size
	cost     int64   // re-production cost
	hval     float64 // GreedyDual key (CostAware)
}

// table is the bookkeeping core the built-in policies embed: a record
// per key plus the sorted resident-key list that makes every scan
// deterministic.
type table[K cmp.Ordered] struct {
	env  Env
	recs map[K]*record
	keys []K // resident keys, ascending
}

func (t *table[K]) init(env Env) {
	t.env = env
	t.recs = make(map[K]*record)
	t.keys = nil
}

// retainRemoved reports whether records survive removal (closed key
// universes; see the package comment).
func (t *table[K]) retainRemoved() bool { return t.env.ExpireK > 0 }

func (t *table[K]) insert(key K, m Meta, now int64) *record {
	r := t.recs[key]
	if r == nil {
		r = &record{}
		t.recs[key] = r
	}
	if !r.resident {
		i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
		t.keys = append(t.keys, key)
		copy(t.keys[i+1:], t.keys[i:])
		t.keys[i] = key
	}
	r.resident = true
	r.accessed = false
	r.counter = 0
	r.bytes = m.Bytes
	r.cost = m.Cost
	if !t.retainRemoved() {
		// Open universe (caches): insertion is the first use, so a
		// fresh entry ranks most-recent — list-LRU semantics. Closed
		// universe keeps the seed runtime's rule instead: recency is
		// execution-only, so a prefetched copy that never ran stays
		// oldest (lastUse 0 or its previous life's timestamp).
		r.lastUse = now
		r.freq++
	}
	return r
}

func (t *table[K]) access(key K, now int64) *record {
	r := t.recs[key]
	if r == nil || !r.resident {
		return nil
	}
	r.accessed = true
	r.counter = 0
	r.lastUse = now
	r.freq++
	return r
}

func (t *table[K]) remove(key K) {
	r := t.recs[key]
	if r == nil || !r.resident {
		return
	}
	r.resident = false
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
	if i < len(t.keys) && t.keys[i] == key {
		t.keys = append(t.keys[:i], t.keys[i+1:]...)
	}
	if !t.retainRemoved() {
		delete(t.recs, key)
	}
}

// tick ages every resident entry except fresh and returns the keys
// whose counter reached ExpireK, lowest first — the k-edge algorithm
// of the paper's Section 3 (Section 5 semantics under Strict).
func (t *table[K]) tick(fresh K, now int64) []K {
	if t.env.ExpireK <= 0 {
		return nil
	}
	var expired []K
	for _, key := range t.keys {
		if key == fresh {
			continue
		}
		r := t.recs[key]
		if !r.accessed && !t.env.Strict {
			continue
		}
		r.counter++
		if r.counter >= t.env.ExpireK {
			expired = append(expired, key)
		}
	}
	return expired
}

// scan visits resident evictable records in ascending key order.
func (t *table[K]) scan(evictable func(K) bool, visit func(key K, r *record)) {
	for _, key := range t.keys {
		if evictable != nil && !evictable(key) {
			continue
		}
		visit(key, t.recs[key])
	}
}

// oldestUse is the recency floor every built-in policy reports.
func (t *table[K]) oldestUse(evictable func(K) bool) (int64, bool) {
	var best int64
	found := false
	t.scan(evictable, func(key K, r *record) {
		if !found || r.lastUse < best {
			best = r.lastUse
			found = true
		}
	})
	return best, found
}
