package policy

import (
	"cmp"

	"apbcc/internal/cfg"
	"apbcc/internal/trace"
)

// strategyCandidates is the shared Figure 3 prefetch dispatch used by
// the replacement-only policies: everything within LookaheadK edges
// under PrefetchAll, the single most probable compressed block under
// PrefetchBest.
func strategyCandidates(env *Env, anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID {
	switch env.Mode {
	case PrefetchAll:
		return env.Graph.WithinK(anchor, env.LookaheadK)
	case PrefetchBest:
		best, ok := trace.BestWithinK(env.Graph, env.Predictor, anchor, env.LookaheadK, compressed)
		if !ok {
			return nil
		}
		return []cfg.BlockID{best}
	}
	return nil
}

// strategyObserve feeds the taken edge to the bound predictor when the
// strategy predicts.
func strategyObserve(env *Env, from, to cfg.BlockID) {
	if env.Mode == PrefetchBest && env.Predictor != nil {
		env.Predictor.Observe(from, to)
	}
}

// CostAware is a GreedyDual-Size policy in the spirit of Cao & Irani
// and of compression-aware memory management (Pekhimenko, "Practical
// Data Compression for Modern Memory Hierarchies"): each entry carries
// a benefit key H = L + Cost/Bytes, where Cost is the modeled cycle
// price of re-producing the entry (per-codec decompression cost in the
// runtime, compression cost in the cache) and Bytes its resident size.
// The victim is the entry with the smallest H; evicting it inflates
// the global floor L to its H, so long-idle entries age out no matter
// how expensive they once were. Accessing an entry refreshes its H at
// the current floor — recency, frequency, unit size and codec speed
// all fold into one scalar.
//
// Expiry and prefetch follow the bound environment (see LFU).
type CostAware[K cmp.Ordered] struct {
	t table[K]
	// floor is the GreedyDual L value: the inflation clock that makes
	// old H values comparable with fresh ones.
	floor float64
}

// NewCostAware builds a GreedyDual-Size policy; Bind before use.
func NewCostAware[K cmp.Ordered]() *CostAware[K] { return &CostAware[K]{} }

// Name implements Policy.
func (p *CostAware[K]) Name() string { return "cost-aware" }

// Bind implements Policy.
func (p *CostAware[K]) Bind(env Env) { p.t.init(env); p.floor = 0 }

// Admit implements Policy: always cache (the budget pressure is
// handled by eviction order, not admission).
func (p *CostAware[K]) Admit(key K, m Meta) bool { return true }

// benefit computes Cost/Bytes with a floor for degenerate metas.
func benefit(r *record) float64 {
	if r.bytes <= 0 {
		return float64(r.cost)
	}
	return float64(r.cost) / float64(r.bytes)
}

// OnInsert implements Policy.
func (p *CostAware[K]) OnInsert(key K, m Meta, now int64) {
	r := p.t.insert(key, m, now)
	r.hval = p.floor + benefit(r)
}

// OnAccess implements Policy: refresh H at the current floor.
func (p *CostAware[K]) OnAccess(key K, now int64) {
	if r := p.t.access(key, now); r != nil {
		r.hval = p.floor + benefit(r)
	}
}

// OnRemove implements Policy.
func (p *CostAware[K]) OnRemove(key K) { p.t.remove(key) }

// Tick implements Policy.
func (p *CostAware[K]) Tick(fresh K, now int64) []K { return p.t.tick(fresh, now) }

// Victim implements Policy: smallest H, ties to least recent use then
// lowest key; evicting raises the floor to the victim's H.
func (p *CostAware[K]) Victim(evictable func(K) bool) (K, bool) {
	var victim K
	var vrec *record
	p.t.scan(evictable, func(key K, r *record) {
		if vrec == nil || r.hval < vrec.hval ||
			(r.hval == vrec.hval && r.lastUse < vrec.lastUse) {
			victim, vrec = key, r
		}
	})
	if vrec == nil {
		return victim, false
	}
	if vrec.hval > p.floor {
		p.floor = vrec.hval
	}
	return victim, true
}

// OldestUse implements Policy.
func (p *CostAware[K]) OldestUse(evictable func(K) bool) (int64, bool) {
	return p.t.oldestUse(evictable)
}

// PrefetchCandidates implements Policy.
func (p *CostAware[K]) PrefetchCandidates(anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID {
	return strategyCandidates(&p.t.env, anchor, compressed)
}

// ObserveEdge implements Policy.
func (p *CostAware[K]) ObserveEdge(from, to cfg.BlockID) { strategyObserve(&p.t.env, from, to) }
