package policy

import (
	"cmp"
	"sort"

	"apbcc/internal/cfg"
	"apbcc/internal/trace"
)

// MarkovPrefetch generalizes the paper's pre-decompress-single
// decision: instead of the single most probable block within the
// lookahead, it scores every block reachable within Depth edges by its
// maximum path probability under an online Markov predictor and
// proposes the top Width candidates whose probability clears MinProb —
// a beam between pre-decompress-single (Width 1) and
// pre-decompress-all (Width ∞, MinProb 0). The predictor observes
// every traversed edge, so the beam sharpens as the run's phase
// behavior emerges.
//
// Replacement and expiry are the paper's k-edge LRU (it embeds
// PaperKLRU's bookkeeping); only the prefetch half differs, so E4
// comparisons against klru isolate prefetch-policy effects.
//
// Unlike the strategy-driven policies it prefetches under any
// configured strategy, including on-demand: choosing this policy *is*
// choosing its prefetch scheme.
type MarkovPrefetch[K cmp.Ordered] struct {
	t table[K]
	// Depth is the lookahead in CFG edges; 0 defaults to the bound
	// LookaheadK, or 3 when that is unset (on-demand configs).
	Depth int
	// Width is the maximum candidates proposed per edge (default 2).
	Width int
	// MinProb drops candidates whose best path probability is below
	// this floor (default 0.05), keeping the decompression thread off
	// wild guesses.
	MinProb float64

	pred trace.Predictor
}

// NewMarkovPrefetch builds a depth-N Markov prefetch policy with
// default beam parameters; Bind before use.
func NewMarkovPrefetch[K cmp.Ordered]() *MarkovPrefetch[K] {
	return &MarkovPrefetch[K]{Width: 2, MinProb: 0.05}
}

// Name implements Policy.
func (p *MarkovPrefetch[K]) Name() string { return "markov-prefetch" }

// Bind implements Policy; it builds its own online Markov predictor
// when the environment supplies none.
func (p *MarkovPrefetch[K]) Bind(env Env) {
	p.t.init(env)
	p.pred = env.Predictor
	if p.pred == nil && env.Graph != nil {
		p.pred = trace.NewMarkov(env.Graph)
	}
	if p.Depth == 0 {
		p.Depth = env.LookaheadK
	}
	if p.Depth == 0 {
		p.Depth = 3
	}
	if p.Width <= 0 {
		p.Width = 2
	}
}

// Admit implements Policy: always cache.
func (p *MarkovPrefetch[K]) Admit(key K, m Meta) bool { return true }

// OnInsert implements Policy.
func (p *MarkovPrefetch[K]) OnInsert(key K, m Meta, now int64) { p.t.insert(key, m, now) }

// OnAccess implements Policy.
func (p *MarkovPrefetch[K]) OnAccess(key K, now int64) { p.t.access(key, now) }

// OnRemove implements Policy.
func (p *MarkovPrefetch[K]) OnRemove(key K) { p.t.remove(key) }

// Tick implements Policy.
func (p *MarkovPrefetch[K]) Tick(fresh K, now int64) []K { return p.t.tick(fresh, now) }

// Victim implements Policy: PaperKLRU's LRU rule.
func (p *MarkovPrefetch[K]) Victim(evictable func(K) bool) (K, bool) {
	var victim K
	var vrec *record
	p.t.scan(evictable, func(key K, r *record) {
		if vrec == nil || r.lastUse < vrec.lastUse {
			victim, vrec = key, r
		}
	})
	return victim, vrec != nil
}

// OldestUse implements Policy.
func (p *MarkovPrefetch[K]) OldestUse(evictable func(K) bool) (int64, bool) {
	return p.t.oldestUse(evictable)
}

// PrefetchCandidates implements Policy: beam search over path
// probabilities within Depth edges, best first, deterministic (prob
// desc, then distance asc, then block ID asc).
func (p *MarkovPrefetch[K]) PrefetchCandidates(anchor cfg.BlockID, compressed func(cfg.BlockID) bool) []cfg.BlockID {
	g := p.t.env.Graph
	if g == nil || p.pred == nil {
		return nil
	}
	type cand struct {
		id   cfg.BlockID
		prob float64
		dist int
	}
	best := make(map[cfg.BlockID]cand)
	frontier := map[cfg.BlockID]float64{anchor: 1}
	for d := 1; d <= p.Depth && len(frontier) > 0; d++ {
		next := make(map[cfg.BlockID]float64)
		for id, prob := range frontier {
			for _, e := range g.Succs(id) {
				np := prob * p.pred.Prob(id, e.To)
				if np <= 0 {
					continue
				}
				if np > next[e.To] {
					next[e.To] = np
				}
				if cur, ok := best[e.To]; !ok || np > cur.prob {
					best[e.To] = cand{e.To, np, d}
				}
			}
		}
		frontier = next
	}
	cands := make([]cand, 0, len(best))
	for _, c := range best {
		if c.prob >= p.MinProb && (compressed == nil || compressed(c.id)) {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.prob != b.prob {
			return a.prob > b.prob
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		return a.id < b.id
	})
	if len(cands) > p.Width {
		cands = cands[:p.Width]
	}
	out := make([]cfg.BlockID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// ObserveEdge implements Policy: the online predictor learns every
// traversed edge.
func (p *MarkovPrefetch[K]) ObserveEdge(from, to cfg.BlockID) {
	if p.pred != nil {
		p.pred.Observe(from, to)
	}
}
