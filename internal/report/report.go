// Package report renders the aligned text tables and CSV the benchmark
// harnesses and command-line tools print. Every experiment in
// EXPERIMENTS.md is regenerated through this package so the rows always
// carry the same columns.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// KB formats a byte count in KiB with two decimals.
func KB(n int) string { return fmt.Sprintf("%.2f KiB", float64(n)/1024) }

// Bar renders a proportional ASCII bar of at most width cells, used by
// the design-space example for quick visual comparison.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
