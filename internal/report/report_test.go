package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[4], "2.500") {
		t.Errorf("float formatting: %q", lines[4])
	}
	// All data lines should have the value column starting at the same
	// offset.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "2.500")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d", idx1, idx2)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `with "quotes", and commas`)
	csv := tb.CSV()
	want := "a,b\nplain,\"with \"\"quotes\"\", and commas\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.256) != "25.6%" {
		t.Errorf("Pct = %q", Pct(0.256))
	}
	if KB(2048) != "2.00 KiB" {
		t.Errorf("KB = %q", KB(2048))
	}
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("Bar should clamp")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("Bar with zero max")
	}
}
