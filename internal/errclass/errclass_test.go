package errclass_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
	"testing"

	"apbcc/internal/compress"
	"apbcc/internal/errclass"
	"apbcc/internal/faults"
	"apbcc/internal/pack"
	"apbcc/internal/service"
	"apbcc/internal/store"
	"apbcc/internal/workloads"
)

// TestClassifyTable pins the taxonomy: every error a store/pack/
// compress constructor can produce lands in exactly one bucket, and
// wrapping (the way the serving path actually sees these errors)
// does not change the verdict.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want errclass.Class
	}{
		// Corrupt: bad bytes, quarantine, never retry.
		{"pack.ErrCorrupt", pack.ErrCorrupt, errclass.Corrupt},
		{"pack.ErrBadMagic", pack.ErrBadMagic, errclass.Corrupt},
		{"pack.ErrBadVersion", pack.ErrBadVersion, errclass.Corrupt},
		{"pack.ErrBadChecksum", pack.ErrBadChecksum, errclass.Corrupt},
		{"compress.ErrCorrupt", compress.ErrCorrupt, errclass.Corrupt},
		{"store.ErrCorrupt", store.ErrCorrupt, errclass.Corrupt},
		{"wrapped pack checksum", fmt.Errorf("pack: block 3: %w", pack.ErrBadChecksum), errclass.Corrupt},
		{"wrapped store corrupt", fmt.Errorf("store: get abc: %w", store.ErrCorrupt), errclass.Corrupt},
		{"double-wrapped compress", fmt.Errorf("pack: %w", fmt.Errorf("decode: %w", compress.ErrCorrupt)), errclass.Corrupt},
		{"truncated object read", fmt.Errorf("pack: payload read: %w", io.ErrUnexpectedEOF), errclass.Corrupt},

		// Transient: worth retrying.
		{"faults.ErrTransient", faults.ErrTransient, errclass.Transient},
		{"wrapped injected fault", fmt.Errorf("faults: site store.read-at: %w", faults.ErrTransient), errclass.Transient},
		{"EINTR", syscall.EINTR, errclass.Transient},
		{"EAGAIN via PathError", &fs.PathError{Op: "read", Path: "x", Err: syscall.EAGAIN}, errclass.Transient},
		{"ETIMEDOUT", fmt.Errorf("store: read: %w", syscall.ETIMEDOUT), errclass.Transient},
		{"os deadline", os.ErrDeadlineExceeded, errclass.Transient},

		// Fatal: no retry, no quarantine.
		{"nil", nil, errclass.Fatal},
		{"store.ErrNotFound", store.ErrNotFound, errclass.Fatal},
		{"pack.ErrNoGroupIndex", pack.ErrNoGroupIndex, errclass.Fatal},
		{"compress.ErrUnknownCodec", compress.ErrUnknownCodec, errclass.Fatal},
		{"compress.ErrUngroupable", compress.ErrUngroupable, errclass.Fatal},
		{"workloads.ErrUnknown", workloads.ErrUnknown, errclass.Fatal},
		{"service.ErrPoolClosed", service.ErrPoolClosed, errclass.Fatal},
		{"context.Canceled", context.Canceled, errclass.Fatal},
		{"context.DeadlineExceeded", context.DeadlineExceeded, errclass.Fatal},
		{"fs.ErrNotExist", fs.ErrNotExist, errclass.Fatal},
		{"anonymous", errors.New("something else"), errclass.Fatal},

		// Priority: corrupt wins over transient when both chains are
		// present (a retry would refetch the same bad bytes).
		{"corrupt wrapped in transient", fmt.Errorf("%w: %w", faults.ErrTransient, pack.ErrCorrupt), errclass.Corrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := errclass.Classify(tc.err)
			if got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
			// Exactly one class: the predicates must agree with
			// Classify and with each other.
			if errclass.IsCorrupt(tc.err) != (tc.want == errclass.Corrupt) {
				t.Fatalf("IsCorrupt(%v) inconsistent with class %v", tc.err, tc.want)
			}
			if errclass.IsTransient(tc.err) != (tc.want == errclass.Transient) {
				t.Fatalf("IsTransient(%v) inconsistent with class %v", tc.err, tc.want)
			}
		})
	}
}

// TestCorruptTriageHolds pins the errors.Is contract the quarantine
// path depends on: every corrupt-class sentinel still chains from
// the errors real decode paths mint.
func TestCorruptTriageHolds(t *testing.T) {
	wrapped := fmt.Errorf("pack: block 7 crc mismatch: %w", pack.ErrBadChecksum)
	if !errors.Is(wrapped, pack.ErrBadChecksum) {
		t.Fatal("errors.Is triage broken for wrapped ErrBadChecksum")
	}
	if errclass.Classify(wrapped) != errclass.Corrupt {
		t.Fatal("wrapped ErrBadChecksum must classify corrupt")
	}
	// A genuinely corrupt container must classify corrupt end to end:
	// run a real decode over garbage.
	if _, _, _, err := pack.Unpack("garbage", []byte("not a container at all")); err == nil {
		t.Fatal("Unpack accepted garbage")
	} else if errclass.Classify(err) != errclass.Corrupt {
		t.Fatalf("Unpack(garbage) error %v classifies %v, want corrupt", err, errclass.Classify(err))
	}
	// String names stay stable: they are metrics labels.
	if errclass.Corrupt.String() != "corrupt" || errclass.Transient.String() != "transient" || errclass.Fatal.String() != "fatal" {
		t.Fatal("class names changed; metrics labels depend on them")
	}
}
