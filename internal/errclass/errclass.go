// Package errclass is the server's error taxonomy: every error that
// surfaces on the serving path is exactly one of transient, corrupt,
// or fatal, and the resilience machinery dispatches on that class.
//
//   - Transient errors are worth retrying: injected faults
//     (faults.ErrTransient), interrupted or timed-out syscalls, I/O
//     deadline misses. The L2 read path retries them with jittered
//     backoff and feeds exhaustion into the circuit breaker.
//   - Corrupt errors mean the bytes themselves are wrong
//     (pack/compress/store ErrCorrupt chains). They are never
//     retried — rereading a bad object yields the same bad object —
//     and quarantine fires immediately.
//   - Fatal errors are everything else: unknown objects, closed
//     pools, cancelled contexts. No retry, no quarantine; the
//     request fails or degrades to the rebuild path.
//
// Classification priority is corrupt > transient > fatal, so a
// corrupt error wrapped by a retryable transport layer still
// quarantines.
package errclass

import (
	"errors"
	"io"
	"os"
	"syscall"

	"apbcc/internal/compress"
	"apbcc/internal/faults"
	"apbcc/internal/pack"
	"apbcc/internal/store"
)

// Class is the triage bucket for a serving-path error.
type Class int

const (
	// Fatal is the default: not retryable, not quarantinable.
	Fatal Class = iota
	// Transient errors may succeed on retry.
	Transient
	// Corrupt errors mean bad bytes: quarantine, never retry.
	Corrupt
)

// String returns the lowercase class name (metrics label friendly).
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	default:
		return "fatal"
	}
}

// corruptSentinels are the chains that mean "the bytes are wrong".
// pack.ErrBadMagic/ErrBadVersion/ErrBadChecksum are distinct
// sentinels (not wrapped in pack.ErrCorrupt), so they are listed
// explicitly.
var corruptSentinels = []error{
	pack.ErrCorrupt,
	pack.ErrBadMagic,
	pack.ErrBadVersion,
	pack.ErrBadChecksum,
	compress.ErrCorrupt,
	store.ErrCorrupt,
}

// transientSentinels are error chains worth retrying. Scheduling
// hiccups (EINTR, EAGAIN) and deadline misses recover on their own;
// faults.ErrTransient is the injected stand-in for all of them.
var transientSentinels = []error{
	faults.ErrTransient,
	os.ErrDeadlineExceeded,
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.ETIMEDOUT,
}

// Classify places err in exactly one class. A nil error is Fatal by
// convention — callers should not classify success.
func Classify(err error) Class {
	if err == nil {
		return Fatal
	}
	for _, s := range corruptSentinels {
		if errors.Is(err, s) {
			return Corrupt
		}
	}
	// Unexpected EOF from a short ReadAt means a truncated object
	// file: the bytes on disk are wrong, not the timing.
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return Corrupt
	}
	for _, s := range transientSentinels {
		if errors.Is(err, s) {
			return Transient
		}
	}
	// Everything else — context cancellation (the caller giving up),
	// fs.ErrNotExist (a stable miss), store.ErrNotFound, closed
	// pools — is Fatal: no retry, no quarantine.
	return Fatal
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return Classify(err) == Transient }

// IsCorrupt reports whether err means bad bytes (quarantine, never
// retry).
func IsCorrupt(err error) bool { return Classify(err) == Corrupt }
