package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair enforces the obs tracing contract: every span opened with
// (*obs.Trace).Begin must be closed with SpanHandle.End on all return
// paths of the opening function, and neither a *obs.Trace nor an open
// SpanHandle may cross a go statement — a Trace is documented as
// single-goroutine (Begin/End must be ordered by happens-before on
// the request goroutine), so handing either to a goroutine corrupts
// the span stack.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "check that obs span Begin has a matching End on all paths and spans never cross a go statement",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) error {
	info := pass.TypesInfo

	isBegin := func(call *ast.CallExpr) bool {
		fn := funcObj(info, call)
		if !isFuncNamed(fn, "internal/obs", "Begin") {
			return false
		}
		recv := fn.Signature().Recv()
		return recv != nil && isNamedType(recv.Type(), "internal/obs", "Trace")
	}
	endTarget := func(call *ast.CallExpr) ast.Expr {
		fn := funcObj(info, call)
		if !isFuncNamed(fn, "internal/obs", "End") {
			return nil
		}
		recv := fn.Signature().Recv()
		if recv == nil || !isNamedType(recv.Type(), "internal/obs", "SpanHandle") {
			return nil
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}

	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			t := &pairTracker{
				pass:          pass,
				isAcquire:     isBegin,
				releaseTarget: endTarget,
				isResourceVar: func(t types.Type) bool {
					return isNamedType(t, "internal/obs", "SpanHandle")
				},
				terminates: func(call *ast.CallExpr) bool {
					return isTerminatorCall(info, call)
				},
				// Passing a handle to a callee hands it off (the route
				// span moves into serveWordRange-style helpers, which
				// End it); unlike pooled buffers, a SpanHandle argument
				// is never a loan.
				transfersOnCall: true,
				what:            "span opened by obs Begin",
				releaseName:     "End",
				escape: func(g *group, site ast.Node, kind string) {
					pass.Reportf(site.Pos(), "open span %s: a SpanHandle must End in the function that Begin-ed it", kind)
				},
			}
			t.walkFunc(fn)
		}

		// Independent goroutine-boundary check: any *obs.Trace or
		// obs.SpanHandle value declared outside a `go` statement but
		// referenced inside it crosses goroutines, which the Trace
		// contract forbids regardless of pairing.
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(g.Call, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || obj.Pos() == 0 {
					return true
				}
				// Declared inside the go statement's own literal is fine.
				if obj.Pos() >= g.Pos() && obj.Pos() < g.End() {
					return true
				}
				if isNamedType(obj.Type(), "internal/obs", "Trace") || isNamedType(obj.Type(), "internal/obs", "SpanHandle") {
					pass.Reportf(id.Pos(), "%s crosses a go statement: obs traces and spans are single-goroutine", obj.Name())
				}
				return true
			})
			return true
		})
	}
	return nil
}
