package analysis

import (
	"go/ast"
	"go/types"
)

// LockDisc generalizes the PR 6 eviction-storm fix into a checked
// invariant: while a sync.Mutex/RWMutex is held, a function must not
//
//   - call through a function value that came from outside the
//     function (a struct field like cacheShard.onStorm, a parameter,
//     or a package-level variable) — user callbacks re-enter
//     arbitrary code and deadlock or stall the shard;
//   - call the log/slog packages or a *slog.Logger method — logging
//     does I/O and takes its own locks;
//   - call a method on a *different* value of the lock owner's own
//     type — shard A reaching into shard B while holding A's lock is
//     the classic lock-ordering deadlock.
//
// Locally-defined closures, interface calls (the policy engine runs
// under the shard lock by contract), and methods on the locked value
// itself are all permitted. Lock regions are tracked per selector
// path (s.mu.Lock … s.mu.Unlock), deferred unlocks hold to function
// end, and an `if mu.TryLock()` body is treated as a held region.
var LockDisc = &Analyzer{
	Name: "lockdisc",
	Doc:  "check that no user callback, log call, or other-instance method runs while a blockShard/stripe mutex is held",
	Run:  runLockDisc,
}

func runLockDisc(pass *Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.collectLocalClosures(fn.Body)
			w.walkStmts(fn.Body.List, lockSet{})
		}
	}
	return nil
}

// lockRegion is one held mutex.
type lockRegion struct {
	key       string     // selector path of the mutex, e.g. "s.mu"
	ownerName string     // selector path of the owning value, e.g. "s"
	ownerType types.Type // named type of the owner (pointer-stripped)
	deferred  bool       // unlocked only by a deferred call: held to function end
}

// lockSet is the per-path set of held locks, keyed by mutex path.
type lockSet map[string]*lockRegion

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockSet) union(o lockSet) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type lockWalker struct {
	pass *Pass
	// localClosures are variables assigned a func literal in this
	// function: calling them under a lock is calling our own code.
	localClosures map[types.Object]bool
}

func (w *lockWalker) collectLocalClosures(body *ast.BlockStmt) {
	info := w.pass.TypesInfo
	w.localClosures = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					if obj := lhsObj(info, lhs); obj != nil {
						w.localClosures[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if _, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						if obj := info.Defs[name]; obj != nil {
							w.localClosures[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

// mutexMethod decodes a call to a sync mutex method, returning the
// receiver path expression and the method name ("Lock", "RUnlock",
// "TryLock", …).
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// regionFor builds the lockRegion for a mutex receiver expression.
func (w *lockWalker) regionFor(recv ast.Expr) *lockRegion {
	r := &lockRegion{key: types.ExprString(recv)}
	if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
		r.ownerName = types.ExprString(sel.X)
		if tv, ok := w.pass.TypesInfo.Types[sel.X]; ok {
			if n := namedType(tv.Type); n != nil {
				r.ownerType = n
			}
		}
	}
	return r
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held lockSet) (terminated bool) {
	for _, s := range list {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held lockSet) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if recv, method, ok := w.mutexMethod(call); ok {
				r := w.regionFor(recv)
				switch method {
				case "Lock", "RLock":
					held[r.key] = r
				case "Unlock", "RUnlock":
					delete(held, r.key)
				}
				return false
			}
			if isTerminatorCall(w.pass.TypesInfo, call) {
				w.checkCalls(s, held)
				return true
			}
		}
		w.checkCalls(s, held)
	case *ast.DeferStmt:
		if recv, method, ok := w.mutexMethod(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			r := w.regionFor(recv)
			if cur, exists := held[r.key]; exists {
				cur.deferred = true
			}
			return false
		}
		// A deferred closure runs after the function body; calls
		// inside it execute outside any region released by then, so
		// only check it against deferred-held locks. Pragmatically:
		// skip (deferred unlocks and deferred callbacks interleave in
		// LIFO order the walker cannot see).
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkCallsExpr(s.Cond, held)
		thenHeld := held.clone()
		// `if mu.TryLock() { … }`: the then-branch holds the lock.
		if call, ok := ast.Unparen(s.Cond).(*ast.CallExpr); ok {
			if recv, method, ok := w.mutexMethod(call); ok && (method == "TryLock" || method == "TryRLock") {
				r := w.regionFor(recv)
				thenHeld[r.key] = r
			}
		}
		termThen := w.walkStmts(s.Body.List, thenHeld)
		elseHeld := held.clone()
		termElse := false
		hasElse := s.Else != nil
		if hasElse {
			termElse = w.walkStmt(s.Else, elseHeld)
		}
		for k := range held {
			delete(held, k)
		}
		if !termThen {
			held.union(thenHeld)
		}
		if !termElse {
			held.union(elseHeld)
		}
		return termThen && termElse && hasElse
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkCallsExpr(s.Cond, held)
		body := held.clone()
		if term := w.walkStmts(s.Body.List, body); !term {
			for k := range held {
				delete(held, k)
			}
			held.union(body)
		}
	case *ast.RangeStmt:
		w.checkCallsExpr(s.X, held)
		body := held.clone()
		if term := w.walkStmts(s.Body.List, body); !term {
			for k := range held {
				delete(held, k)
			}
			held.union(body)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkCallsExpr(r, held)
		}
		return true
	case *ast.AssignStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.checkCalls(s, held)
	}
	return false
}

func (w *lockWalker) walkCases(s ast.Stmt, held lockSet) (terminated bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkCallsExpr(s.Tag, held)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	merged := lockSet{}
	anyLive := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, held)
			}
			body = c.Body
		}
		cs := held.clone()
		if term := w.walkStmts(body, cs); !term {
			merged.union(cs)
			anyLive = true
		}
	}
	if !hasDefault {
		merged.union(held)
		anyLive = true
	}
	for k := range held {
		delete(held, k)
	}
	held.union(merged)
	return !anyLive && len(clauses) > 0
}

// checkCalls scans a statement's expressions for calls made while
// locks are held. Function-literal bodies are skipped unless the
// literal is invoked on the spot.
func (w *lockWalker) checkCalls(s ast.Stmt, held lockSet) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body runs here,
				// under the same locks.
				w.walkStmts(lit.Body.List, held.clone())
				return false
			}
			w.checkOneCall(n, held)
		}
		return true
	})
}

func (w *lockWalker) checkCallsExpr(e ast.Expr, held lockSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.checkOneCall(n, held)
		}
		return true
	})
}

func heldNames(held lockSet) string {
	for k := range held {
		return k
	}
	return ""
}

func (w *lockWalker) checkOneCall(call *ast.CallExpr, held lockSet) {
	info := w.pass.TypesInfo

	// The mutex's own methods are the region bookkeeping itself.
	if _, _, ok := w.mutexMethod(call); ok {
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		switch obj := obj.(type) {
		case *types.Builtin, *types.TypeName, *types.Nil:
			return
		case *types.Var:
			if w.localClosures[obj] {
				return
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				w.pass.Reportf(call.Pos(), "call through function value %q while holding %s: callbacks must be invoked after the lock is released", fun.Name, heldNames(held))
			}
		case *types.Func:
			w.checkStaticCallee(call, obj, held)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if _, isSig := sel.Type().Underlying().(*types.Signature); isSig {
				w.pass.Reportf(call.Pos(), "call through callback field %q while holding %s: capture it and invoke after unlocking", types.ExprString(fun), heldNames(held))
				return
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			w.checkStaticCallee(call, fn, held)
			// Cross-instance discipline: a method on another value of
			// the lock owner's own type.
			if recvTV, ok := info.Types[fun.X]; ok {
				reName := types.ExprString(fun.X)
				if rn := namedType(recvTV.Type); rn != nil {
					for _, r := range held {
						if r.ownerType != nil && types.Identical(r.ownerType, rn) && r.ownerName != reName {
							w.pass.Reportf(call.Pos(), "method call on %s while holding %s's lock: cross-instance calls under a stripe lock invert lock order", reName, r.ownerName)
						}
					}
				}
			}
		}
	}
}

// checkStaticCallee flags log/slog calls under a lock.
func (w *lockWalker) checkStaticCallee(call *ast.CallExpr, fn *types.Func, held lockSet) {
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "log", "log/slog":
		w.pass.Reportf(call.Pos(), "%s.%s while holding %s: logging does I/O and takes its own locks — log after unlocking", fn.Pkg().Name(), fn.Name(), heldNames(held))
	}
}
