// unitchecker.go is the driver half of the suite: it speaks the JSON
// "unit" protocol cmd/go uses for -vettool plugins, so cmd/apcc-lint
// runs under `go vet -vettool=…` with cmd/go doing package loading,
// dependency ordering, and export-data plumbing. The protocol per
// package unit: cmd/go writes a *.cfg JSON file describing the
// package (file list, import map, export-data paths for every
// dependency) and invokes the tool with that path as its sole
// positional argument; the tool type-checks the sources against the
// provided export data, runs its analyzers, prints findings to
// stderr, and exits 0 (clean) or 1 (findings). Units whose VetxOnly
// flag is set exist only to produce cross-package facts — this suite
// keeps no facts, so those exit immediately.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"sort"
)

// vetConfig mirrors the JSON cmd/go emits for each vet unit. Unknown
// fields are ignored by encoding/json, which keeps this robust across
// toolchain versions.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// A Finding is one diagnostic attributed to its analyzer, surviving
// suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunVetUnit processes one vet unit config, printing findings to
// stderr. It returns the process exit status under the repo's unified
// convention: 0 clean, 1 findings, 2 usage/IO/internal error.
func RunVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "apcc-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "apcc-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite computes no cross-package facts, but cmd/go expects
	// the fact ("vetx") output file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "apcc-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "apcc-lint:", err)
			return 2
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "apcc-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	findings, err := RunAnalyzers(fset, files, pkg, info, All)
	if err != nil {
		fmt.Fprintln(stderr, "apcc-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// typeCheck type-checks the unit against the export data cmd/go
// supplied for its dependencies.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tc := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	if version.IsValid(cfg.GoVersion) {
		tc.GoVersion = cfg.GoVersion
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// RunAnalyzers runs the given analyzers over one type-checked package
// and returns the findings that survive //apcc:allow suppression,
// sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allows := CollectAllows(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			if allows.Suppresses(fset, a.Name, d.Pos) {
				return
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}
