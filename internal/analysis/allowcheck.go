package analysis

import "strings"

// AllowCheck lints the suppression machinery itself: every
// //apcc:allow comment must name a registered analyzer and give a
// non-empty reason, so suppressions stay auditable (a reasonless
// allow is also ignored by the driver — this analyzer explains why
// the finding it was supposed to silence is still firing).
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc:  "check that //apcc:allow comments name a known analyzer and carry a reason",
	Run:  runAllowCheck,
}

func runAllowCheck(pass *Pass) error {
	for _, m := range collectMarks(pass.Fset, pass.Files, allowPrefix) {
		name, reason, _ := strings.Cut(m.Args, " ")
		switch {
		case name == "":
			pass.Reportf(m.Pos, "//apcc:allow needs an analyzer name and a reason: //apcc:allow <analyzer> <why>")
		case !knownAnalyzer(name):
			pass.Reportf(m.Pos, "//apcc:allow names unknown analyzer %q (known: %s)", name, strings.Join(analyzerNames(), ", "))
		case strings.TrimSpace(reason) == "":
			pass.Reportf(m.Pos, "//apcc:allow %s has no reason: suppressions must say why the invariant does not apply", name)
		}
	}
	return nil
}
