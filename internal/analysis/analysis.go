// Package analysis is the repo's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, Diagnostic) plus the five
// invariant checkers the codebase lives by — pooled-buffer ownership
// (bufpool), the append-API dst-prefix contract (appendapi),
// ErrCorrupt discipline on hostile-input paths (corrupterr), no
// callbacks or logging under shard locks (lockdisc), and span
// Begin/End pairing (spanpair) — along with allowcheck, which lints
// the suppression comments themselves.
//
// The suite runs through cmd/apcc-lint, either standalone or as a
// `go vet -vettool` plugin (the driver in unitchecker.go speaks the
// cmd/go vet JSON protocol), so the invariants are machine-checked in
// CI instead of resting on reviewer vigilance and alloc-pin tests.
//
// Suppression: a finding is silenced by a comment on the flagged line
// or the line directly above it:
//
//	//apcc:allow <analyzer> <reason>
//
// The reason is mandatory; allowcheck flags malformed or unknown
// suppressions. The bufpool analyzer additionally honors
// //apcc:owns (see bufpool.go) for intentional ownership transfer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check over a type-checked
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //apcc:allow comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run reports violations through pass.Report.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SourceFiles returns the pass's non-test files. The invariants
// target production code: tests leak buffers and fabricate errors on
// purpose, so analyzers iterate these instead of Pass.Files.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Directive comment prefixes. Both are whole-line or end-of-line
// comments; see package doc for the allow grammar.
const (
	allowPrefix = "//apcc:allow"
	ownsPrefix  = "//apcc:owns"
)

// A Mark is one //apcc:* directive comment, resolved to its file
// position.
type Mark struct {
	File string // filename as recorded in the FileSet
	Line int
	Pos  token.Pos
	Args string // text after the directive word, space-trimmed
}

// collectMarks gathers every directive comment with the given prefix
// (e.g. "//apcc:allow") across files. A directive must be its own
// comment: "//apcc:allowx" does not match "//apcc:allow".
func collectMarks(fset *token.FileSet, files []*ast.File, prefix string) []Mark {
	var out []Mark
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutDirective(c.Text, prefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, Mark{File: pos.Filename, Line: pos.Line, Pos: c.Pos(), Args: rest})
			}
		}
	}
	return out
}

// cutDirective returns the argument text of a directive comment, and
// whether the comment is that directive (exact word match).
func cutDirective(text, prefix string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // different directive sharing the prefix
	}
	return strings.TrimSpace(rest), true
}

// Allows indexes //apcc:allow suppressions: analyzer name -> file ->
// set of lines carrying a well-formed allow for that analyzer.
type Allows map[string]map[string]map[int]bool

// CollectAllows scans the files' comments for //apcc:allow
// directives. Malformed directives (no analyzer name, or no reason)
// are ignored here — allowcheck reports them — so a reasonless allow
// never silences anything.
func CollectAllows(fset *token.FileSet, files []*ast.File) Allows {
	allows := make(Allows)
	for _, m := range collectMarks(fset, files, allowPrefix) {
		name, reason, _ := strings.Cut(m.Args, " ")
		if name == "" || strings.TrimSpace(reason) == "" {
			continue
		}
		byFile := allows[name]
		if byFile == nil {
			byFile = make(map[string]map[int]bool)
			allows[name] = byFile
		}
		lines := byFile[m.File]
		if lines == nil {
			lines = make(map[int]bool)
			byFile[m.File] = lines
		}
		lines[m.Line] = true
	}
	return allows
}

// Suppresses reports whether a diagnostic from the named analyzer at
// pos is covered by an allow on the same line or the line directly
// above.
func (a Allows) Suppresses(fset *token.FileSet, name string, pos token.Pos) bool {
	byFile := a[name]
	if byFile == nil {
		return false
	}
	p := fset.Position(pos)
	lines := byFile[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}

// ownsLines returns file -> lines carrying an //apcc:owns mark.
func ownsLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, m := range collectMarks(fset, files, ownsPrefix) {
		lines := out[m.File]
		if lines == nil {
			lines = make(map[int]bool)
			out[m.File] = lines
		}
		lines[m.Line] = true
	}
	return out
}

// ---- shared type/AST helpers ----

// funcObj resolves the called function or method of call, nil for
// dynamic calls, builtins and conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathMatches reports whether a package path is the named repo
// package: an exact match, or any module's copy of it ("…/internal/x"
// suffix), so the analyzers work identically on this module and on
// fixture modules that stub the same layout.
func pkgPathMatches(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// isFuncNamed reports whether fn is a function or method with the
// given name defined in a package matching pkgSuffix (see
// pkgPathMatches).
func isFuncNamed(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return pkgPathMatches(fn.Pkg().Path(), pkgSuffix)
}

// namedType unwraps pointers and aliases to the underlying named
// type, nil when t is not named.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), pkgSuffix)
}

// identObj resolves an identifier expression (through parens) to its
// object, nil otherwise.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// refersTo reports whether the expression tree mentions obj.
func refersTo(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
