// Package errors is a minimal stub of the standard library package,
// just enough surface for the fixtures to type-check hermetically.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func New(text string) error { return &errorString{text} }

func Is(err, target error) bool { return err == target }
