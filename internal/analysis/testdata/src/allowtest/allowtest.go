// Package allowtest feeds allowcheck's direct test (a //apcc:allow
// line comment runs to end-of-line, so want comments cannot share its
// line; allowcheck_test.go asserts on positions instead).
package allowtest

//apcc:allow
func missingName() {}

//apcc:allow nosuch the analyzer does not exist
func unknownName() {}

//apcc:allow bufpool
func missingReason() {}

//apcc:allow bufpool the ring owns this buffer and recycles it on close
func wellFormed() {}
