// Package scopetest pins corrupterr's package scoping: decode-named
// functions outside internal/pack, internal/compress, and
// internal/store may mint any error they like.
package scopetest

import "errors"

func DecodeThing() error { return errors.New("not a container decode path") }

func ParseFlags() error { return errors.New("flag parsing is not hostile input") }
