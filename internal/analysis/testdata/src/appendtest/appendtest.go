// Package appendtest is the appendapi analyzer's golden fixture: the
// compliant patch-back idiom (indices anchored at a captured
// len(dst)), every contract violation shape, and a reasoned
// suppression.
package appendtest

type codec struct{}

func grow(dst []byte, n int) []byte { return append(dst, make([]byte, n)...) }

// CompressAppend is fully compliant: growth via append and helpers
// that thread dst, writes only at anchored indices.
func (codec) CompressAppend(dst, src []byte) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0)
	dst[base] = 1
	dst[base+1] = 2
	for _, b := range src {
		dst = append(dst, b)
	}
	dst = grow(dst, len(src))
	copy(dst[base+2:], src)
	j := base + 1
	dst[j]++
	return dst, nil
}

// DecompressAppend violates the contract in every shape the analyzer
// reports.
func (codec) DecompressAppend(dst, comp []byte) ([]byte, error) {
	dst[0] = 1 // want `indexed write to dst may land below the incoming len\(dst\)`
	for i := range comp {
		dst[i] = comp[i] // want `indexed write to dst may land below the incoming len\(dst\)`
	}
	n := 0
	dst[n]++                  // want `indexed write to dst may land below the incoming len\(dst\)`
	copy(dst, comp)           // want `copy into dst writes from index 0`
	copy(dst[n:], comp)       // want `copy into dst at an unanchored offset`
	clear(dst)                // want `clear on dst erases the caller's prefix`
	dst = dst[:0]             // want `dst reassigned outside the append idiom`
	dst = make([]byte, 4, 16) // want `dst reassigned from a call that does not take dst`
	dst = append(dst, comp...)
	return dst, nil
}

// AppendGroupOffsets carries a reviewed suppression.
func (codec) AppendGroupOffsets(dst []uint32, comp []byte) ([]uint32, error) {
	//apcc:allow appendapi fixture demonstrates a reviewed in-place fixup
	dst[0] = 0
	return dst, nil
}
