// Package log is a minimal stub of the standard library package,
// just enough surface for the fixtures to type-check hermetically.
// The lockdisc analyzer matches logging calls by this package path.
package log

func Printf(format string, v ...any) {}

func Println(v ...any) {}

func Fatalf(format string, v ...any) {}
