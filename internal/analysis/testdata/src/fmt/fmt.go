// Package fmt is a minimal stub of the standard library package,
// just enough surface for the fixtures to type-check hermetically.
package fmt

func Errorf(format string, a ...any) error { return nil }

func Sprintf(format string, a ...any) string { return format }

func Println(a ...any) (int, error) { return 0, nil }
