// Package sync is a minimal stub of the standard library package,
// just enough surface for the fixtures to type-check hermetically.
// The lockdisc analyzer matches mutex methods by this package path.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{ state int }

func (m *RWMutex) Lock()          {}
func (m *RWMutex) Unlock()        {}
func (m *RWMutex) RLock()         {}
func (m *RWMutex) RUnlock()       {}
func (m *RWMutex) TryLock() bool  { return true }
func (m *RWMutex) TryRLock() bool { return true }
