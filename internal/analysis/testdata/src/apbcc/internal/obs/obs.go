// Package obs stubs the repo's tracing package: the spanpair analyzer
// matches Trace.Begin and SpanHandle.End by the internal/obs path
// suffix, so fixtures import this copy.
package obs

type Trace struct{ open int }

type SpanHandle struct {
	t *Trace
	i int
}

type Stage uint8

type Outcome string

const (
	StageRoute Stage = iota
	StageRebuild
	StageWrite
)

const (
	OutcomeOK    Outcome = "ok"
	OutcomeError Outcome = "error"
)

func (t *Trace) Begin(s Stage) SpanHandle { return SpanHandle{t: t} }

func (h SpanHandle) End(o Outcome) {}
