// Package compress stubs the repo's compress package: the bufpool
// analyzer matches GetBuf/PutBuf and the corrupterr analyzer matches
// ErrCorrupt by the internal/compress path suffix, so fixtures import
// this copy instead of the real (heavier) package.
package compress

import "errors"

var ErrCorrupt = errors.New("compress: corrupt input")

func GetBuf(n int) []byte { return make([]byte, 0, n) }

func PutBuf(b []byte) {}

type Codec struct{}

func (Codec) CompressAppend(dst, src []byte) ([]byte, error) { return dst, nil }

func (Codec) DecompressAppend(dst, comp []byte) ([]byte, error) { return dst, nil }
