// Package locktest is the lockdisc analyzer's golden fixture: each
// forbidden call shape under a held mutex (callback field, function
// value, logging, cross-instance method), the sanctioned patterns
// (capture-then-call, own methods, local closures, calls after
// unlock), TryLock regions, and a reasoned suppression.
package locktest

import (
	"log"
	"sync"
)

type shard struct {
	mu      sync.Mutex
	onEvict func(int)
	n       int
}

func (s *shard) bump() { s.n++ }

// lockedCallback invokes a callback field under the lock.
func (s *shard) lockedCallback() {
	s.mu.Lock()
	s.onEvict(1) // want `call through callback field "s\.onEvict" while holding s\.mu`
	s.mu.Unlock()
}

// capturedCallback is the sanctioned pattern: capture under the lock,
// invoke after releasing it.
func (s *shard) capturedCallback() {
	s.mu.Lock()
	cb := s.onEvict
	s.mu.Unlock()
	cb(1)
}

// lockedLog logs while the (deferred-unlock) lock is held.
func (s *shard) lockedLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	log.Printf("n=%d", s.n) // want `log\.Printf while holding s\.mu`
}

// crossInstance reaches into another shard while holding its own
// lock: the classic lock-ordering inversion.
func (s *shard) crossInstance(other *shard) {
	s.mu.Lock()
	other.bump() // want `method call on other while holding s's lock`
	s.mu.Unlock()
}

// ownMethod calls a method on the locked value itself: allowed.
func (s *shard) ownMethod() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

// funcValueParam calls through a function parameter under the lock.
func (s *shard) funcValueParam(f func()) {
	s.mu.Lock()
	f() // want `call through function value "f" while holding s\.mu`
	s.mu.Unlock()
}

// localClosure invokes this function's own code: allowed.
func (s *shard) localClosure() {
	work := func() { s.n++ }
	s.mu.Lock()
	work()
	s.mu.Unlock()
}

// afterUnlock may call anything once the region ends.
func (s *shard) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.onEvict(1)
	log.Println("done")
}

// tryLock holds the lock only in the then-branch.
func (s *shard) tryLock() {
	if s.mu.TryLock() {
		log.Println("acquired") // want `log\.Println while holding s\.mu`
		s.mu.Unlock()
	}
	log.Println("after")
}

// allowCallback documents a reviewed re-entrant callback.
func (s *shard) allowCallback() {
	s.mu.Lock()
	//apcc:allow lockdisc fixture demonstrates a reviewed non-blocking callback
	s.onEvict(2)
	s.mu.Unlock()
}
