// Package store is the corrupterr analyzer's golden fixture for the
// disk tier. Its import path ends in internal/store so the analyzer's
// package scoping matches it the same way it matches the real store:
// read/verify errors there feed the serving path's retry-vs-quarantine
// triage, so naked errors are just as dangerous as in the decoders.
package store

import (
	"errors"
	"fmt"

	"apbcc/internal/compress"
)

// Package-level sentinels are outside any function: never flagged.
var errClosed = errors.New("store: closed")

// ReadBlockRange mixes naked errors (flagged) with properly chained
// ones.
func ReadBlockRange(b []byte) error {
	if len(b) == 0 {
		return errors.New("store: empty object") // want `errors\.New in a decode path`
	}
	if b[0] > 3 {
		return fmt.Errorf("store: truncated object %d", b[0]) // want `fmt\.Errorf without %w in a decode path`
	}
	if b[0] == 2 {
		return fmt.Errorf("%w: object checksum mismatch", compress.ErrCorrupt)
	}
	return errClosed
}

// VerifyObject chains every rejection: nothing flagged.
func VerifyObject(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: object shorter than header", compress.ErrCorrupt)
	}
	return nil
}

// Quarantine is not a decode-path name: free to mint plain errors.
func Quarantine(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	return nil
}
