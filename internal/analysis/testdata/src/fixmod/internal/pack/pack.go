// Package pack is the corrupterr analyzer's golden fixture. Its
// import path ends in internal/pack so the analyzer's package scoping
// matches it the same way it matches the real decode layer.
package pack

import (
	"errors"
	"fmt"

	"apbcc/internal/compress"
)

// Package-level sentinels are outside any function: never flagged.
var errSetup = errors.New("pack: bad setup")

// DecodeHeader mixes naked errors (flagged) with properly chained
// ones.
func DecodeHeader(b []byte) error {
	if len(b) == 0 {
		return errors.New("pack: empty header") // want `errors\.New in a decode path`
	}
	if b[0] > 3 {
		return fmt.Errorf("pack: bad version %d", b[0]) // want `fmt\.Errorf without %w in a decode path`
	}
	if b[0] == 2 {
		return fmt.Errorf("%w: legacy container version", compress.ErrCorrupt)
	}
	return errSetup
}

// parseTrailer carries a reviewed suppression.
func parseTrailer(b []byte) error {
	//apcc:allow corrupterr fixture demonstrates a reviewed non-corrupt decode error
	return errors.New("pack: trailer decoding unsupported")
}

// BuildIndex is not a decode-path name: free to mint plain errors.
func BuildIndex(n int) error {
	if n < 0 {
		return errors.New("pack: negative index size")
	}
	return nil
}
