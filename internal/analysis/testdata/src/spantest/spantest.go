// Package spantest is the spanpair analyzer's golden fixture: paired
// spans, the hand-off-to-helper pattern, leaks, discarded handles,
// goroutine crossings, and a reasoned suppression.
package spantest

import "apbcc/internal/obs"

func cond() bool { return false }

// paired Ends on every path.
func paired(tr *obs.Trace) {
	sp := tr.Begin(obs.StageRoute)
	if cond() {
		sp.End(obs.OutcomeError)
		return
	}
	sp.End(obs.OutcomeOK)
}

// handoff passes the open handle to a helper, which takes over the
// obligation to End it.
func handoff(tr *obs.Trace) {
	sp := tr.Begin(obs.StageRoute)
	finish(sp)
}

func finish(sp obs.SpanHandle) { sp.End(obs.OutcomeOK) }

// missingEnd leaks the span on the early return.
func missingEnd(tr *obs.Trace) {
	sp := tr.Begin(obs.StageRoute) // want `span opened by obs Begin is not released by End on every path`
	if cond() {
		return
	}
	sp.End(obs.OutcomeOK)
}

// discarded never binds the handle, so it can never End.
func discarded(tr *obs.Trace) {
	tr.Begin(obs.StageRebuild) // want `result of this call is discarded`
}

// crossGoroutine moves an open handle onto another goroutine: both
// the pairing rule and the single-goroutine rule fire.
func crossGoroutine(tr *obs.Trace) {
	sp := tr.Begin(obs.StageWrite)
	go func() { // want `open span captured by goroutine`
		sp.End(obs.OutcomeOK) // want `sp crosses a go statement`
	}()
}

// traceCrossing hands the trace itself to a goroutine.
func traceCrossing(tr *obs.Trace) {
	go func() {
		sp := tr.Begin(obs.StageWrite) // want `tr crosses a go statement`
		sp.End(obs.OutcomeOK)
	}()
}

// allowDiscard shows a reasoned suppression.
func allowDiscard(tr *obs.Trace) {
	//apcc:allow spanpair fixture demonstrates a reviewed suppression
	_ = tr.Begin(obs.StageWrite)
}
