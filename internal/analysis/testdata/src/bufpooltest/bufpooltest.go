// Package bufpooltest is the bufpool analyzer's golden fixture:
// compliant pool usage (straight-line, deferred, closure-deferred,
// append-threaded, reslice-threaded), each leak and escape shape the
// analyzer reports, and the //apcc:owns and //apcc:allow escapes.
package bufpooltest

import "apbcc/internal/compress"

type holder struct{ b []byte }

var (
	h     holder
	codec compress.Codec
)

func cond() bool { return true }

// straightLine releases on its only path.
func straightLine() {
	buf := compress.GetBuf(64)
	compress.PutBuf(buf)
}

// deferred covers every return path with one deferred release.
func deferred() {
	buf := compress.GetBuf(64)
	defer compress.PutBuf(buf)
	if cond() {
		return
	}
}

// deferredClosure re-binds the variable after deferring a closure:
// the closure reads the final binding, so the rebinding is covered.
func deferredClosure() {
	buf := compress.GetBuf(64)
	defer func() { compress.PutBuf(buf) }()
	buf = append(buf, 1)
}

// threaded follows the append idiom: the pooled buffer lives on under
// the call result, and releasing either alias releases it.
func threaded() error {
	buf := compress.GetBuf(64)
	out, err := codec.DecompressAppend(buf, nil)
	if err != nil {
		compress.PutBuf(buf)
		return err
	}
	compress.PutBuf(out)
	return nil
}

// resliced threads the buffer through a reslice, the scratch[:0]
// shape the codecs use.
func resliced() error {
	scratch := compress.GetBuf(64)
	out, err := codec.CompressAppend(scratch[:0], nil)
	if err != nil {
		compress.PutBuf(scratch)
		return err
	}
	compress.PutBuf(out)
	return nil
}

// leakOnBranch forgets the release on the early return.
func leakOnBranch() {
	buf := compress.GetBuf(64) // want `pooled buffer from compress\.GetBuf is not released by compress\.PutBuf on every path`
	if cond() {
		return
	}
	compress.PutBuf(buf)
}

// discarded drops the result on the floor.
func discarded() {
	compress.GetBuf(64) // want `result of this call is discarded`
}

// returned hands the buffer out without declaring the transfer.
func returned() []byte {
	buf := compress.GetBuf(64)
	return buf // want `pooled buffer returned: ownership of a compress\.GetBuf buffer may only leave the function under an //apcc:owns annotation`
}

// stored parks the buffer in a struct field without declaring the
// transfer.
func stored() {
	buf := compress.GetBuf(64)
	h.b = buf // want `pooled buffer stored outside the function`
}

// goCapture leaks the buffer into another goroutine.
func goCapture() {
	buf := compress.GetBuf(64)
	go func() { // want `pooled buffer captured by goroutine`
		compress.PutBuf(buf)
	}()
}

// ownsStore declares the handoff: the holder releases the buffer.
func ownsStore() {
	buf := compress.GetBuf(64)
	//apcc:owns the holder recycles the buffer when it is replaced
	h.b = buf
}

// ownsFunc declares the whole function an ownership boundary.
//
//apcc:owns constructor: the returned buffer is released by holder.close
func ownsFunc() []byte {
	buf := compress.GetBuf(64)
	return buf
}

// allowLeak shows a reasoned suppression of a leak finding.
func allowLeak() {
	//apcc:allow bufpool fixture demonstrates a reasoned suppression
	buf := compress.GetBuf(64)
	_ = buf
}
