package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// CorruptErr enforces the hostile-input error discipline in the
// decode layers: internal/pack and internal/compress promise that
// every error produced while rejecting malformed input satisfies
// errors.Is(err, ErrCorrupt) — the robustness tests, the store's
// quarantine logic, and the server's corrupt-vs-transient triage all
// dispatch on that sentinel. A decode-path function that constructs
// an error with errors.New, or with fmt.Errorf and no %w verb,
// produces an unchainable error that silently falls out of that
// triage.
//
// Scope: functions in packages …/internal/pack, …/internal/compress,
// and …/internal/store whose name starts with a decode-path stem
// (Decompress, Decode, Parse, Unpack, Verify, Read, FromModel — any
// case). The store joined the scope when the serving path started
// triaging its read/verify errors into retry (transient) vs quarantine
// (corrupt): a naked error there would dodge both branches and be
// treated as fatal. Errors built with fmt.Errorf("%w: …", ErrCorrupt, …)
// or wrapping an upstream error with %w pass; package-level sentinel
// declarations are outside any function and are never flagged.
var CorruptErr = &Analyzer{
	Name: "corrupterr",
	Doc:  "check that decode paths in pack/compress/store wrap ErrCorrupt (or an upstream error) with %w instead of minting naked errors",
	Run:  runCorruptErr,
}

// corruptStems are the lowercase name prefixes that mark a function
// as a hostile-input decode path.
var corruptStems = []string{"decompress", "decode", "parse", "unpack", "verify", "read", "frommodel"}

func runCorruptErr(pass *Pass) error {
	path := pass.Pkg.Path()
	if !pkgPathMatches(path, "internal/pack") && !pkgPathMatches(path, "internal/compress") &&
		!pkgPathMatches(path, "internal/store") {
		return nil
	}
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isDecodePathName(fn.Name.Name) {
				continue
			}
			checkCorruptErrors(pass, fn.Body)
		}
	}
	return nil
}

func isDecodePathName(name string) bool {
	l := strings.ToLower(name)
	for _, stem := range corruptStems {
		if strings.HasPrefix(l, stem) {
			return true
		}
	}
	return false
}

func checkCorruptErrors(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			pass.Reportf(call.Pos(), "errors.New in a decode path mints an error that cannot chain to ErrCorrupt: use fmt.Errorf(\"%%w: …\", ErrCorrupt) so hostile-input triage (errors.Is) keeps working")
		case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // dynamic format: cannot judge statically
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w in a decode path breaks the ErrCorrupt chain: wrap the sentinel (or the upstream error) with %%w")
			}
		}
		return true
	})
}
