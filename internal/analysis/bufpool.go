package analysis

import (
	"go/ast"
	"go/types"
)

// BufPool enforces the pooled-buffer ownership rules documented in
// internal/compress/bufpool.go and DESIGN.md: every buffer obtained
// from compress.GetBuf must reach compress.PutBuf on all return paths
// of the acquiring function, and must not escape into struct fields,
// map/slice elements, channels, goroutines, or return values unless
// the handoff is annotated with //apcc:owns (on the escape line, the
// line above it, or the function's doc comment), which documents that
// ownership — including the eventual PutBuf — transfers with the
// value.
//
// The tracker follows the repo's append idiom: a buffer threaded
// through a call that returns it grown (out, err :=
// codec.DecompressAppend(compress.GetBuf(n), comp)) stays tracked
// under the result variable, and a deferred closure that puts a
// variable (defer func() { compress.PutBuf(scratch) }()) covers every
// later rebinding of that variable, matching Go's capture semantics.
var BufPool = &Analyzer{
	Name: "bufpool",
	Doc:  "check that compress.GetBuf buffers are PutBuf-released on all paths and never escape without //apcc:owns",
	Run:  runBufPool,
}

func runBufPool(pass *Pass) error {
	files := pass.SourceFiles()
	owns := ownsLines(pass.Fset, files)

	ownsAt := func(pos ast.Node) bool {
		p := pass.Fset.Position(pos.Pos())
		lines := owns[p.Filename]
		return lines != nil && (lines[p.Line] || lines[p.Line-1])
	}

	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnOwns := docHasOwns(fn)
			t := &pairTracker{
				pass: pass,
				isAcquire: func(call *ast.CallExpr) bool {
					return isFuncNamed(funcObj(pass.TypesInfo, call), "internal/compress", "GetBuf")
				},
				releaseTarget: func(call *ast.CallExpr) ast.Expr {
					if isFuncNamed(funcObj(pass.TypesInfo, call), "internal/compress", "PutBuf") && len(call.Args) == 1 {
						return call.Args[0]
					}
					return nil
				},
				isResourceVar: func(t types.Type) bool {
					s, ok := types.Unalias(t).Underlying().(*types.Slice)
					if !ok {
						return false
					}
					b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
					return ok && b.Kind() == types.Byte
				},
				terminates: func(call *ast.CallExpr) bool {
					return isTerminatorCall(pass.TypesInfo, call)
				},
				what:        "pooled buffer from compress.GetBuf",
				releaseName: "compress.PutBuf",
			}
			t.escape = func(g *group, site ast.Node, kind string) {
				if fnOwns || ownsAt(site) {
					return
				}
				pass.Reportf(site.Pos(), "pooled buffer %s: ownership of a compress.GetBuf buffer may only leave the function under an //apcc:owns annotation", kind)
			}
			t.walkFunc(fn)
		}
	}
	return nil
}

// docHasOwns reports whether the function's doc comment carries an
// //apcc:owns mark, declaring the whole function an ownership
// boundary.
func docHasOwns(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if _, ok := cutDirective(c.Text, ownsPrefix); ok {
			return true
		}
	}
	return false
}
