package analysis

import (
	"sort"
	"strings"
	"testing"
)

// The golden fixtures: each package under testdata/src encodes its
// analyzer's positive cases, negative cases, and suppressions as
// `// want` comments (see harness_test.go).

func TestBufPoolFixture(t *testing.T) { checkFixture(t, "bufpooltest", BufPool) }

func TestAppendAPIFixture(t *testing.T) { checkFixture(t, "appendtest", AppendAPI) }

func TestCorruptErrFixture(t *testing.T) { checkFixture(t, "fixmod/internal/pack", CorruptErr) }

func TestCorruptErrStoreFixture(t *testing.T) { checkFixture(t, "fixmod/internal/store", CorruptErr) }

func TestCorruptErrOutOfScope(t *testing.T) { checkFixture(t, "scopetest", CorruptErr) }

func TestLockDiscFixture(t *testing.T) { checkFixture(t, "locktest", LockDisc) }

func TestSpanPairFixture(t *testing.T) { checkFixture(t, "spantest", SpanPair) }

// TestAllowCheck drives allowcheck directly: an //apcc:allow line
// comment runs to end-of-line, so the fixture cannot carry same-line
// want comments.
func TestAllowCheck(t *testing.T) {
	l := newFixtureLoader()
	pkg, err := l.load("allowtest")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(l.fset, l.asts["allowtest"], pkg, l.info["allowtest"], []*Analyzer{AllowCheck})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"//apcc:allow needs an analyzer name and a reason",
		`names unknown analyzer "nosuch"`,
		"has no reason",
	}
	if len(findings) != len(wantSubstrings) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wantSubstrings), findings)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding contains %q; findings: %v", want, findings)
		}
	}
}

// TestRegistryNameList pins the hand-maintained analyzerNameList
// (which cannot be derived from All without an init cycle through
// allowcheck) to All's actual names.
func TestRegistryNameList(t *testing.T) {
	var fromAll []string
	for _, a := range All {
		fromAll = append(fromAll, a.Name)
	}
	sort.Strings(fromAll)
	got := analyzerNames()
	if len(got) != len(fromAll) {
		t.Fatalf("analyzerNameList = %v, want the names of All = %v", got, fromAll)
	}
	for i := range got {
		if got[i] != fromAll[i] {
			t.Fatalf("analyzerNameList = %v, want the names of All = %v", got, fromAll)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) = non-nil")
	}
}
