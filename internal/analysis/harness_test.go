package analysis

// The analysistest-style harness: fixture packages live under
// testdata/src/<import-path> GOPATH-style, together with tiny stub
// packages (errors, fmt, sync, log, apbcc/internal/…) that stand in
// for their real counterparts, so fixtures type-check hermetically —
// no export data, no module cache, no source importer. Expected
// diagnostics are written in the fixture itself as
//
//	code() // want `regexp`
//
// with one or more quoted (interpreted or raw) regexps per comment,
// matched against the diagnostics reported on that line. Unmatched
// expectations and unexpected diagnostics both fail the test.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureLoader parses and type-checks testdata/src packages, pulling
// dependencies recursively through itself.
type fixtureLoader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
	asts map[string][]*ast.File
	info map[string]*types.Info
}

func newFixtureLoader() *fixtureLoader {
	return &fixtureLoader{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: make(map[string]*types.Package),
		asts: make(map[string][]*ast.File),
		info: make(map[string]*types.Info),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) { return l.load(path) }

func (l *fixtureLoader) load(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q: no Go files in %s", path, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	l.pkgs[path] = pkg
	l.asts[path] = files
	l.info[path] = info
	return pkg, nil
}

// expectation is one want-comment regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want …` comments across the package's files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are not want-carriers
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits the want payload into its quoted regexps:
// interpreted ("…", unquoted via strconv) or raw (`…`).
func parseWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated raw pattern in want comment", pos)
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		case '"':
			qp, rest, err := cutQuoted(s)
			if err != nil {
				t.Fatalf("%s: bad quoted pattern in want comment: %v", pos, err)
			}
			pats = append(pats, qp)
			s = rest
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted, got %q", pos, s)
		}
	}
}

// cutQuoted unquotes the leading interpreted string literal of s.
func cutQuoted(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			lit := s[:i+1]
			val, err := strconv.Unquote(lit)
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", s)
}

// checkFixture loads the fixture package, runs the analyzers over it,
// and reconciles findings with the package's want comments.
func checkFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	l := newFixtureLoader()
	pkg, err := l.load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	files, info := l.asts[pkgPath], l.info[pkgPath]
	wants := collectWants(t, l.fset, files)

	findings, err := RunAnalyzers(l.fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
findings:
	for _, f := range findings {
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				continue findings
			}
		}
		t.Errorf("unexpected diagnostic at %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}
