// flow.go implements the branch-sensitive acquire/release tracker
// shared by the bufpool and spanpair analyzers. It is a pragmatic
// AST-level abstract interpretation, not a full CFG: paths through
// if/switch/select merge by union (a resource released on only one
// branch stays live on the merged path), returns check the live set,
// and loops adopt their body's end state once (so acquire+release
// inside a loop nets out, and a release of an outer resource inside
// the loop counts — accepting a little unsoundness to stay useful).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// group is one acquired resource. Several variables may alias it (the
// append idiom rebinds a pooled buffer through every grow call);
// releasing any alias releases the group.
type group struct {
	pos      token.Pos // acquire site, where leaks are reported
	reported bool
}

// pairTracker configures the engine for one resource kind.
type pairTracker struct {
	pass *Pass

	// isAcquire reports whether call creates a resource.
	isAcquire func(call *ast.CallExpr) bool
	// releaseTarget returns the expression whose resource this call
	// releases (PutBuf's argument, End's receiver), nil otherwise.
	releaseTarget func(call *ast.CallExpr) ast.Expr
	// isResourceVar reports whether a variable of this type can carry
	// the resource (gates aliasing through call results).
	isResourceVar func(t types.Type) bool
	// terminates reports whether a call ends the function abnormally
	// (panic, log.Fatal); live resources are not reported on those
	// paths.
	terminates func(call *ast.CallExpr) bool

	// transfersOnCall: passing the resource as a plain argument moves
	// custody into the callee (span handles are handed off this way);
	// when false the caller keeps ownership (pooled buffers lent to a
	// codec still need the caller's PutBuf).
	transfersOnCall bool

	what        string // e.g. "pooled buffer from GetBuf"
	releaseName string // e.g. "PutBuf"

	// escape is invoked when a live resource is returned, stored into
	// a field/map/slice/global, sent on a channel, or captured by a go
	// statement. kind is a short description for the message. If nil,
	// escapes end tracking silently.
	escape func(g *group, site ast.Node, kind string)

	// per-function state
	binding       map[types.Object]*group
	deferReleased map[types.Object]bool
}

// state is the per-path live set.
type state struct {
	live map[*group]bool
}

func (s *state) clone() *state {
	c := &state{live: make(map[*group]bool, len(s.live))}
	for g := range s.live {
		c.live[g] = true
	}
	return c
}

func (s *state) union(o *state) {
	for g := range o.live {
		s.live[g] = true
	}
}

// run walks every function declaration in the pass's source files.
func (t *pairTracker) run() {
	for _, file := range t.pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			t.walkFunc(fn)
		}
	}
}

func (t *pairTracker) walkFunc(fn *ast.FuncDecl) {
	t.binding = make(map[types.Object]*group)
	t.deferReleased = make(map[types.Object]bool)
	st := &state{live: make(map[*group]bool)}
	if terminated := t.walkStmts(fn.Body.List, st); !terminated {
		t.reportLive(st)
	}
}

func (t *pairTracker) reportLive(st *state) {
	for g := range st.live {
		if !g.reported {
			g.reported = true
			t.pass.Reportf(g.pos, "%s is not released by %s on every path (add %s on each return path, defer it, or annotate the handoff)",
				t.what, t.releaseName, t.releaseName)
		}
	}
}

func (t *pairTracker) walkStmts(list []ast.Stmt, st *state) (terminated bool) {
	for _, s := range list {
		if t.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (t *pairTracker) walkStmt(s ast.Stmt, st *state) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		t.handleAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				t.handleAssign(&ast.AssignStmt{Lhs: lhs, Tok: token.DEFINE, Rhs: vs.Values}, st)
			}
		}
	case *ast.ExprStmt:
		return t.handleExpr(s.X, st)
	case *ast.DeferStmt:
		t.handleDefer(s, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			t.checkEscapes(res, st, "returned", s)
			t.scanOrphanAcquires(res, st, s)
		}
		t.reportLive(st)
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		thenSt := st.clone()
		termThen := t.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		termElse := false
		hasElse := s.Else != nil
		if hasElse {
			termElse = t.walkStmt(s.Else, elseSt)
		}
		st.live = make(map[*group]bool)
		if !termThen {
			st.union(thenSt)
		}
		if !termElse {
			st.union(elseSt)
		}
		return termThen && termElse && hasElse
	case *ast.ForStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		body := st.clone()
		if term := t.walkStmts(s.Body.List, body); !term {
			st.live = body.live
		}
	case *ast.RangeStmt:
		body := st.clone()
		if term := t.walkStmts(s.Body.List, body); !term {
			st.live = body.live
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return t.walkCases(s, st)
	case *ast.BlockStmt:
		return t.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)
	case *ast.GoStmt:
		t.checkEscapes(s.Call, st, "captured by goroutine", s)
	case *ast.SendStmt:
		t.checkEscapes(s.Value, st, "sent on channel", s)
	}
	return false
}

// walkCases handles switch/type-switch/select uniformly: each clause
// starts from the pre-state; fall-through merges the non-terminated
// clause ends, plus the pre-state when no default clause exists.
func (t *pairTracker) walkCases(s ast.Stmt, st *state) (terminated bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	merged := &state{live: make(map[*group]bool)}
	anyLive := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				t.walkStmt(c.Comm, st)
			}
			body = c.Body
		}
		cs := st.clone()
		if term := t.walkStmts(body, cs); !term {
			merged.union(cs)
			anyLive = true
		}
	}
	if !hasDefault {
		merged.union(st)
		anyLive = true
	}
	st.live = merged.live
	return !anyLive && len(clauses) > 0
}

// handleExpr processes a statement-level expression: releases,
// discarded acquires, terminator calls.
func (t *pairTracker) handleExpr(e ast.Expr, st *state) (terminated bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if tgt := t.releaseTarget(call); tgt != nil {
		t.release(tgt, st)
		return false
	}
	if t.isAcquire(call) {
		t.pass.Reportf(call.Pos(), "result of this call is discarded: the %s can never be released", t.what)
		return false
	}
	if t.terminates != nil && t.terminates(call) {
		return true
	}
	t.transferArgs(call, st)
	t.scanOrphanAcquires(e, st, e)
	return false
}

// transferArgs, under transfersOnCall, hands custody of any live
// resource passed as an argument to the callee.
func (t *pairTracker) transferArgs(call *ast.CallExpr, st *state) {
	if !t.transfersOnCall {
		return
	}
	for _, arg := range call.Args {
		if obj := argBaseObj(t.pass.TypesInfo, arg); obj != nil {
			if g := t.binding[obj]; g != nil {
				delete(st.live, g)
			}
		}
	}
}

// handleDefer distinguishes `defer Put(x)` (releases the value x
// holds now) from `defer func(){ Put(x) }()` (the closure reads x at
// exit: every later rebinding of x is released too).
func (t *pairTracker) handleDefer(s *ast.DeferStmt, st *state) {
	if tgt := t.releaseTarget(s.Call); tgt != nil {
		t.release(tgt, st)
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tgt := t.releaseTarget(call); tgt != nil {
				if obj := identObj(t.pass.TypesInfo, tgt); obj != nil {
					t.deferReleased[obj] = true
				}
				t.release(tgt, st)
			}
			return true
		})
	}
}

// release drops the group bound to the released expression, if
// tracked.
func (t *pairTracker) release(target ast.Expr, st *state) {
	if obj := identObj(t.pass.TypesInfo, target); obj != nil {
		if g := t.binding[obj]; g != nil {
			delete(st.live, g)
		}
	}
}

// handleAssign binds acquire results, threads aliases through calls
// (out, err := codec.DecompressAppend(GetBuf(n), comp) keeps the pool
// buffer tracked under out), and checks store-escapes.
func (t *pairTracker) handleAssign(a *ast.AssignStmt, st *state) {
	info := t.pass.TypesInfo

	// Store-escapes: a live resource assigned to a field, element, or
	// dereference leaves the function's custody.
	for i, lhs := range a.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if i < len(a.Rhs) {
				t.checkEscapes(a.Rhs[i], st, "stored outside the function", a)
			} else if len(a.Rhs) == 1 {
				t.checkEscapes(a.Rhs[0], st, "stored outside the function", a)
			}
		}
	}

	if len(a.Rhs) == 1 {
		rhs := ast.Unparen(a.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			t.bindCall(a, call, st)
			return
		}
		// Plain alias: y := x.
		if obj := identObj(info, rhs); obj != nil {
			if g := t.binding[obj]; g != nil && st.live[g] {
				if lobj := lhsObj(info, a.Lhs[0]); lobj != nil {
					t.bind(lobj, g, st)
				}
			}
		}
		return
	}
	// Parallel assignment: bind acquires positionally.
	for i, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && t.isAcquire(call) {
			if i < len(a.Lhs) {
				t.bindNew(lhsObj(info, a.Lhs[i]), call.Pos(), st)
			}
		}
	}
}

// bindCall handles `lhs, ... := call(...)`: a direct acquire binds a
// new group; a call that consumes an acquire or a live alias in its
// arguments rebinds the group to the first result when that result
// can carry the resource.
func (t *pairTracker) bindCall(a *ast.AssignStmt, call *ast.CallExpr, st *state) {
	info := t.pass.TypesInfo
	lobj := lhsObj(info, a.Lhs[0])
	if t.isAcquire(call) {
		t.bindNew(lobj, call.Pos(), st)
		return
	}
	if lobj == nil || !t.isResourceVar(lobj.Type()) {
		// Result cannot carry the resource; still catch acquires
		// buried in the arguments with no way out.
		t.transferArgs(call, st)
		t.scanOrphanAcquires(call, st, call)
		return
	}
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && t.isAcquire(inner) {
			g := &group{pos: inner.Pos()}
			t.bind(lobj, g, st)
			if t.deferReleased[lobj] {
				delete(st.live, g)
			}
			return
		}
		if obj := argBaseObj(info, arg); obj != nil {
			if g := t.binding[obj]; g != nil && st.live[g] {
				t.bind(lobj, g, st)
				return
			}
		}
	}
}

// argBaseObj resolves a call argument to the variable carrying it,
// looking through reslices: passing scratch[:0] into an append-style
// callee threads scratch's backing array just as passing scratch does.
func argBaseObj(info *types.Info, arg ast.Expr) types.Object {
	e := ast.Unparen(arg)
	for {
		sl, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = ast.Unparen(sl.X)
	}
	return identObj(info, e)
}

func (t *pairTracker) bindNew(obj types.Object, pos token.Pos, st *state) {
	if obj == nil {
		t.pass.Reportf(pos, "result of this call is discarded: the %s can never be released", t.what)
		return
	}
	g := &group{pos: pos}
	t.bind(obj, g, st)
	if t.deferReleased[obj] {
		delete(st.live, g)
	}
}

func (t *pairTracker) bind(obj types.Object, g *group, st *state) {
	if obj == nil {
		return
	}
	t.binding[obj] = g
	st.live[g] = true
}

// lhsObj resolves an assignment target identifier, skipping blank.
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkEscapes reports each live resource referenced by e.
func (t *pairTracker) checkEscapes(e ast.Expr, st *state, kind string, site ast.Node) {
	info := t.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		g := t.binding[obj]
		if g == nil || !st.live[g] {
			return true
		}
		delete(st.live, g) // custody left this function either way
		if t.escape != nil {
			t.escape(g, site, kind)
		}
		return true
	})
}

// scanOrphanAcquires reports acquires nested in an expression whose
// result is not bound to any variable (e.g. a fresh buffer passed to
// a function that does not return it).
func (t *pairTracker) scanOrphanAcquires(e ast.Expr, st *state, site ast.Node) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t.isAcquire(call) {
			t.pass.Reportf(call.Pos(), "result of this call is not bound to a variable: the %s can never be released", t.what)
			return false
		}
		return true
	})
}

// isTerminatorCall recognizes calls that never return: panic,
// os.Exit, runtime.Goexit, log.Fatal*/Panic*, (*testing.T).Fatal*.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := funcObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "SkipNow", "Skipf", "Skip":
			return true
		}
	}
	return false
}
