package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AppendAPI enforces the dst-prefix-preservation contract of the
// zero-alloc codec API: implementations of CompressAppend,
// DecompressAppend and AppendGroupOffsets receive a dst slice whose
// existing contents belong to the caller and may only grow it. The
// analyzer flags, inside any function with one of those names:
//
//   - reassignments of dst that are not calls threading dst through
//     (dst = append(dst, …), dst = extendLen(dst, n), …) — in
//     particular reslices like dst = dst[:0], which re-expose or
//     discard the caller's prefix;
//   - indexed writes dst[i] = … (and dst[i] op= …, dst[i]++) where i
//     is not provably anchored at or above the incoming len(dst): an
//     index is anchored when it derives from len(dst) by addition —
//     base := len(dst); dst[base+k] = … — the idiom every patch-back
//     write in the codecs uses;
//   - copy(dst, …) and copy(dst[i:], …) with an unanchored i, and
//     clear(dst), all of which overwrite from below the append
//     frontier.
//
// The corresponding dynamic check is the prefix-preservation assert
// in FuzzAppendRoundTrip; this makes the same contract visible at
// compile time.
var AppendAPI = &Analyzer{
	Name: "appendapi",
	Doc:  "check that append-API implementations only grow dst and never write below the incoming len(dst)",
	Run:  runAppendAPI,
}

// appendAPINames are the contract-bearing method names.
var appendAPINames = map[string]bool{
	"CompressAppend":     true,
	"DecompressAppend":   true,
	"AppendGroupOffsets": true,
}

func runAppendAPI(pass *Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !appendAPINames[fn.Name.Name] {
				continue
			}
			dst := firstSliceParam(pass.TypesInfo, fn)
			if dst == nil {
				continue
			}
			c := &appendChecker{pass: pass, dst: dst}
			c.collectAssigns(fn.Body)
			c.check(fn.Body)
		}
	}
	return nil
}

// firstSliceParam resolves the first parameter when it is a slice —
// the dst of the append contract.
func firstSliceParam(info *types.Info, fn *ast.FuncDecl) types.Object {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	name := params.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj := info.Defs[name]
	if obj == nil {
		return nil
	}
	if _, ok := types.Unalias(obj.Type()).Underlying().(*types.Slice); !ok {
		return nil
	}
	return obj
}

type appendChecker struct {
	pass *Pass
	dst  types.Object

	// assigns collects every assignment RHS per object, for the
	// anchored-index fixpoint; poisoned marks objects with an
	// assignment form that breaks anchoring (range var, i--, i -= k).
	assigns  map[types.Object][]ast.Expr
	poisoned map[types.Object]bool
}

func (c *appendChecker) collectAssigns(body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	c.assigns = make(map[types.Object][]ast.Expr)
	c.poisoned = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					obj := lhsObj(info, lhs)
					if obj == nil {
						continue
					}
					switch n.Tok {
					case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN:
						c.assigns[obj] = append(c.assigns[obj], n.Rhs[i])
					default: // -=, *=, …: no longer provably ≥ anchor
						c.poisoned[obj] = true
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					if obj := lhsObj(info, lhs); obj != nil {
						c.poisoned[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := lhsObj(info, n.X); obj != nil && n.Tok == token.DEC {
				c.poisoned[obj] = true
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				if obj := lhsObj(info, n.Key); obj != nil {
					c.poisoned[obj] = true
				}
			}
		}
		return true
	})
}

func (c *appendChecker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// dst[i] = …, dst[i] op= …
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.isDst(idx.X) {
					if !c.anchored(idx.Index, nil) {
						c.pass.Reportf(idx.Pos(), "indexed write to %s may land below the incoming len(%s): the append-API contract only permits growth via append (anchor the index at a captured len(%s))",
							c.dst.Name(), c.dst.Name(), c.dst.Name())
					}
					continue
				}
				// dst = …
				if c.isDst(lhs) {
					var rhs ast.Expr
					if i < len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					c.checkDstReassign(n, rhs)
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && c.isDst(idx.X) {
				if !c.anchored(idx.Index, nil) {
					c.pass.Reportf(idx.Pos(), "indexed write to %s may land below the incoming len(%s)", c.dst.Name(), c.dst.Name())
				}
			}
		case *ast.CallExpr:
			c.checkBuiltinWrite(n)
		}
		return true
	})
}

// checkDstReassign permits only call results that thread dst through
// their arguments (append, growCap/extendLen, helper appenders).
func (c *appendChecker) checkDstReassign(at *ast.AssignStmt, rhs ast.Expr) {
	if rhs == nil {
		c.pass.Reportf(at.Pos(), "unpaired reassignment of %s in an append-API implementation", c.dst.Name())
		return
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		for _, arg := range call.Args {
			if c.refersToDst(arg) {
				return // dst flows through the callee: growth-preserving by contract
			}
		}
		c.pass.Reportf(at.Pos(), "%s reassigned from a call that does not take %s: the incoming prefix is lost", c.dst.Name(), c.dst.Name())
		return
	}
	c.pass.Reportf(at.Pos(), "%s reassigned outside the append idiom (reslicing or replacing dst can expose or discard the caller's prefix)", c.dst.Name())
}

// checkBuiltinWrite flags copy/clear forms that write from an
// unanchored offset.
func (c *appendChecker) checkBuiltinWrite(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "copy":
		if len(call.Args) != 2 {
			return
		}
		target := ast.Unparen(call.Args[0])
		if c.isDst(target) {
			c.pass.Reportf(call.Pos(), "copy into %s writes from index 0, below the incoming len(%s)", c.dst.Name(), c.dst.Name())
			return
		}
		if sl, ok := target.(*ast.SliceExpr); ok && c.isDst(sl.X) {
			if sl.Low == nil || !c.anchored(sl.Low, nil) {
				c.pass.Reportf(call.Pos(), "copy into %s at an unanchored offset may overwrite the incoming prefix", c.dst.Name())
			}
		}
	case "clear":
		if len(call.Args) == 1 && c.refersToDst(call.Args[0]) {
			c.pass.Reportf(call.Pos(), "clear on %s erases the caller's prefix", c.dst.Name())
		}
	}
}

func (c *appendChecker) isDst(e ast.Expr) bool {
	return identObj(c.pass.TypesInfo, e) == c.dst
}

func (c *appendChecker) refersToDst(e ast.Expr) bool {
	return refersTo(c.pass.TypesInfo, e, c.dst)
}

// anchored reports whether e provably evaluates to at least the
// incoming len(dst): len(dst) itself (len never shrinks under the
// append-only rules this analyzer enforces alongside), an anchored
// variable, or an addition with an anchored term. visiting breaks
// recursion through self-referential updates (i = i + 4).
func (c *appendChecker) anchored(e ast.Expr, visiting map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
		return ok && b.Name() == "len" && len(e.Args) == 1 && c.isDst(e.Args[0])
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		if visiting[obj] {
			return true // self-referential step (i += k); the base assignment decides
		}
		if c.poisoned[obj] {
			return false
		}
		rhss := c.assigns[obj]
		if len(rhss) == 0 {
			return false
		}
		if visiting == nil {
			visiting = make(map[types.Object]bool)
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		for _, rhs := range rhss {
			if !c.anchored(rhs, visiting) {
				return false
			}
		}
		return true
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return c.anchored(e.X, visiting) || c.anchored(e.Y, visiting)
		}
		return false
	default:
		return false
	}
}

// nonTestName reports whether the position is in a non-test file
// (used by analyzers that scan positions outside SourceFiles walks).
func nonTestName(fset *token.FileSet, pos token.Pos) bool {
	return !strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
