package analysis

import "sort"

// All is the full invariant suite in the order diagnostics are
// grouped by the driver.
var All = []*Analyzer{
	AppendAPI,
	AllowCheck,
	BufPool,
	CorruptErr,
	LockDisc,
	SpanPair,
}

// analyzerNameList feeds allowcheck's name validation. It is a plain
// string list (not derived from All) because deriving it would form
// an initialization cycle through AllowCheck itself; registry_test.go
// pins it equal to All's names.
var analyzerNameList = []string{"allowcheck", "appendapi", "bufpool", "corrupterr", "lockdisc", "spanpair"}

func knownAnalyzer(name string) bool {
	for _, n := range analyzerNameList {
		if n == name {
			return true
		}
	}
	return false
}

func analyzerNames() []string {
	names := append([]string(nil), analyzerNameList...)
	sort.Strings(names)
	return names
}

// ByName returns the named analyzer, nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}
