// Package apbcc is a reproduction of "Access Pattern-Based Code
// Compression for Memory-Constrained Embedded Systems" (Ozturk,
// Saputra, Kandemir, Kolcu — DATE 2005): a runtime that keeps an
// embedded program's basic blocks compressed in memory and uses the
// control flow graph plus the observed block access pattern to decide
// when to decompress blocks (on-demand or predictively, ahead of
// execution) and when to discard decompressed copies (the k-edge
// algorithm).
//
// The implementation lives under internal/:
//
//	isa        ERI32, a 32-bit RISC ISA (encoder/decoder/disassembler)
//	asm        two-pass ERI32 assembler
//	cfg        control flow graphs and analyses (dominators, loops, k-edge reach)
//	program    programs = instructions + CFG + branch sites
//	compress   block codecs (dict, lzss, huffman, rle, identity) + cost models
//	mem        software-managed code memory (arena allocator, image, occupancy)
//	trace      block access traces, profiles, predictors
//	policy     pluggable replacement & prefetch engine (paper k-edge LRU,
//	           LFU, GreedyDual-Size cost-aware, Markov beam prefetch)
//	core       the paper's runtime: k-edge compression, pre-decompression,
//	           remember sets, budget eviction — the primary contribution
//	sim        deterministic three-thread cycle simulator
//	rt         goroutine-based concurrent runtime (race-clean)
//	workloads  eleven-kernel synthetic embedded benchmark suite
//	bench      experiment harnesses (the tables in EXPERIMENTS.md)
//	report     text tables / CSV
//	pack       deployable compressed-image containers (the APCC format,
//	           v2: indexed for random block access)
//	store      content-addressed on-disk container store (crash-safe
//	           writes, fsck + quarantine, ReadAt block serving)
//	service    concurrent pack-serving subsystem: sharded block cache,
//	           L2 disk tier with warm restarts, batching worker pool,
//	           HTTP container/block endpoints, load generator
//
// Commands: cmd/apcc (single run), cmd/apcc-sweep (regenerate all
// experiment tables), cmd/apcc-pack (build/inspect containers),
// cmd/apcc-serve (serve containers and blocks over HTTP; -loadgen
// replays access patterns against it), cmd/benchdiff (benchstat-style
// old-vs-new comparison of tracked benchmark captures, the CI
// regression gate), cmd/cfgdump, cmd/asmtool.
// Runnable examples are under examples/. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package apbcc
