// Benchmarks: one per reproduced figure/experiment (see the experiment
// index in DESIGN.md). Each benchmark times the experiment's
// representative configuration end-to-end (manager construction
// excluded, simulation included) and attaches the headline result
// numbers as custom metrics, so `go test -bench=.` both times the
// system and regenerates the paper-shape results. The full row-by-row
// tables are produced by `go run ./cmd/apcc-sweep` and recorded in
// EXPERIMENTS.md.
package apbcc_test

import (
	"fmt"
	"testing"

	"apbcc/internal/bench"
	"apbcc/internal/cfg"
	"apbcc/internal/compress"
	"apbcc/internal/core"
	"apbcc/internal/mem"
	"apbcc/internal/multi"
	"apbcc/internal/policy"
	"apbcc/internal/program"
	"apbcc/internal/rt"
	"apbcc/internal/sim"
	"apbcc/internal/trace"
	"apbcc/internal/workloads"
)

// benchSteps keeps per-iteration work moderate; the recorded
// EXPERIMENTS.md numbers use bench.DefaultSteps via apcc-sweep.
const benchSteps = 5000

// runCell builds and simulates one cell, reporting b.Fatal on error.
func runCell(b *testing.B, name string, conf core.Config) *sim.Result {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := bench.RunCell(w, conf, benchSteps)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// figureProgram synthesizes one of the paper's figure CFGs.
func figureProgram(b *testing.B, g *cfg.Graph) (*program.Program, compress.Codec) {
	b.Helper()
	p, err := program.Synthesize("figure", g, 11)
	if err != nil {
		b.Fatal(err)
	}
	code, err := p.CodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	codec, err := compress.New("dict", code)
	if err != nil {
		b.Fatal(err)
	}
	return p, codec
}

// BenchmarkFigure1KEdge times the Figure 1 worked example: the 2-edge
// algorithm compressing B1 as execution enters B4.
func BenchmarkFigure1KEdge(b *testing.B) {
	p, codec := figureProgram(b, cfg.Figure1())
	tr, err := trace.FromLabels(p.Graph, "B0", "B1", "B3", "B4")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewManager(p, core.Config{Codec: codec, CompressK: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(m, tr, sim.DefaultCosts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2PreDecompress times the Figure 2 worked example:
// k=3 pre-decompression issuing B7 at the exit of B1.
func BenchmarkFigure2PreDecompress(b *testing.B) {
	p, codec := figureProgram(b, cfg.Figure2())
	tr, err := trace.Generate(p.Graph, trace.GenConfig{Seed: 2, MaxSteps: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewManager(p, core.Config{
			Codec: codec, CompressK: 100, Strategy: core.PreAll, DecompressK: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(m, tr, sim.DefaultCosts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3DesignSpace times the design-space cell the paper's
// Figure 3 enumerates, one strategy per sub-benchmark, and reports the
// tradeoff metrics.
func BenchmarkFigure3DesignSpace(b *testing.B) {
	cases := []struct {
		name string
		conf func(g *cfg.Graph) core.Config
	}{
		{"on-demand", func(*cfg.Graph) core.Config {
			return core.Config{CompressK: 4}
		}},
		{"pre-all", func(*cfg.Graph) core.Config {
			return core.Config{CompressK: 4, Strategy: core.PreAll, DecompressK: 2}
		}},
		{"pre-single", func(g *cfg.Graph) core.Config {
			return core.Config{CompressK: 4, Strategy: core.PreSingle, DecompressK: 2,
				Predictor: trace.NewMarkov(g)}
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w, err := workloads.ByName("mpeg2motion")
			if err != nil {
				b.Fatal(err)
			}
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.RunCell(w, c.conf(w.Program.Graph), benchSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Overhead(), "overhead-%")
			b.ReportMetric(100*res.AvgSaving(), "avg-saving-%")
			b.ReportMetric(100*res.HitRate(), "hit-%")
		})
	}
}

// BenchmarkFigure4Threads times the three-thread pipeline of Figure 4
// on the sequential-chain workload where the decompression thread must
// run ahead of execution.
func BenchmarkFigure4Threads(b *testing.B) {
	b.Run("sim", func(b *testing.B) {
		var res *sim.Result
		for i := 0; i < b.N; i++ {
			res = runCell(b, "sha", core.Config{
				CompressK: 12, Strategy: core.PreAll, DecompressK: 2,
			})
		}
		b.ReportMetric(100*res.HitRate(), "hit-%")
		b.ReportMetric(float64(res.DecompThreadBusy), "decomp-busy-cyc")
		b.ReportMetric(float64(res.CompThreadBusy), "comp-busy-cyc")
	})
	b.Run("goroutines", func(b *testing.B) {
		w, err := workloads.ByName("sha")
		if err != nil {
			b.Fatal(err)
		}
		code, err := w.Program.CodeBytes()
		if err != nil {
			b.Fatal(err)
		}
		codec, err := compress.New("dict", code)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trace.Generate(w.Program.Graph, trace.GenConfig{Seed: 1, MaxSteps: 2000, Restart: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.NewManager(w.Program, core.Config{
				Codec: codec, CompressK: 12, Strategy: core.PreAll, DecompressK: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			rtm := rt.New(m, codec)
			if _, err := rtm.Execute(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure5OnDemand times the Figure 5 golden scenario.
func BenchmarkFigure5OnDemand(b *testing.B) {
	p, codec := figureProgram(b, cfg.Figure5())
	tr, err := trace.FromLabels(p.Graph, "B0", "B1", "B0", "B1", "B3")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewManager(p, core.Config{Codec: codec, CompressK: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(m, tr, sim.DefaultCosts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1MemoryVsK reports the memory half of the k tradeoff.
func BenchmarkE1MemoryVsK(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(ksuffix(k), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = runCell(b, "dijkstra", core.Config{CompressK: k})
			}
			b.ReportMetric(100*res.AvgSaving(), "avg-saving-%")
			b.ReportMetric(100*res.PeakSaving(), "peak-saving-%")
		})
	}
}

// BenchmarkE2OverheadVsK reports the performance half of the k
// tradeoff.
func BenchmarkE2OverheadVsK(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(ksuffix(k), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = runCell(b, "dijkstra", core.Config{CompressK: k})
			}
			b.ReportMetric(100*res.Overhead(), "overhead-%")
		})
	}
}

// BenchmarkE3Codecs times raw codec compress/decompress throughput on a
// realistic program image and reports the achieved ratio.
func BenchmarkE3Codecs(b *testing.B) {
	w, err := workloads.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	img, err := w.Program.CodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range compress.Names() {
		codec, err := compress.New(name, img)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := codec.Compress(img)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/compress", func(b *testing.B) {
			b.SetBytes(int64(len(img)))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Compress(img); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*compress.Ratio(len(img), len(comp)), "ratio-%")
		})
		b.Run(name+"/decompress", func(b *testing.B) {
			b.SetBytes(int64(len(img)))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decompress(comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Policies times one E4 cell per replacement/prefetch
// policy: the zipf workload under a tight budget with pre-all
// lookahead, reporting each policy's hit/eviction/demand counters —
// the tracked perf row for the policy engine itself (its bookkeeping
// runs on every EnterBlock).
func BenchmarkE4Policies(b *testing.B) {
	free := runCell(b, "zipf", core.Config{CompressK: 4, Strategy: core.PreAll, DecompressK: 2})
	budget := free.CompressedSize + (free.PeakResident-free.CompressedSize)/2
	for _, name := range policy.Names() {
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol, err := policy.New[core.UnitID](name)
				if err != nil {
					b.Fatal(err)
				}
				res = runCell(b, "zipf", core.Config{
					CompressK: 4, Strategy: core.PreAll, DecompressK: 2,
					BudgetBytes: budget, Policy: pol,
				})
			}
			b.ReportMetric(float64(res.Core.Hits), "hits")
			b.ReportMetric(float64(res.Core.Evictions), "evictions")
			b.ReportMetric(float64(res.Core.DemandDecompresses), "demand-decomp")
			b.ReportMetric(100*res.Overhead(), "overhead-%")
		})
	}
}

// BenchmarkE4bBudget times the LRU budget mode under a tight cap.
func BenchmarkE4bBudget(b *testing.B) {
	free := runCell(b, "fft", core.Config{CompressK: 64})
	budget := free.CompressedSize + (free.PeakResident-free.CompressedSize)/2
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = runCell(b, "fft", core.Config{CompressK: 64, BudgetBytes: budget})
	}
	b.ReportMetric(float64(res.Core.Evictions), "evictions")
	b.ReportMetric(100*res.Overhead(), "overhead-%")
}

// BenchmarkE5Granularity compares block- and function-level units.
func BenchmarkE5Granularity(b *testing.B) {
	for _, g := range []core.Granularity{core.GranBlock, core.GranFunction} {
		b.Run(g.String(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = runCell(b, "susan", core.Config{CompressK: 2, Granularity: g})
			}
			b.ReportMetric(100*res.AvgSaving(), "avg-saving-%")
			b.ReportMetric(100*res.Overhead(), "overhead-%")
		})
	}
}

// BenchmarkE6Predictors compares the pre-decompress-single predictors.
func BenchmarkE6Predictors(b *testing.B) {
	w, err := workloads.ByName("dijkstra")
	if err != nil {
		b.Fatal(err)
	}
	preds := map[string]func() trace.Predictor{
		"static": func() trace.Predictor { return trace.NewStatic(w.Program.Graph) },
		"markov": func() trace.Predictor { return trace.NewMarkov(w.Program.Graph) },
	}
	for name, mk := range preds {
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.RunCell(w, core.Config{
					CompressK: 4, Strategy: core.PreSingle, DecompressK: 2, Predictor: mk(),
				}, benchSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Core.DemandDecompresses), "demand-misses")
			b.ReportMetric(100*res.Overhead(), "overhead-%")
		})
	}
}

// BenchmarkE7CounterSemantics compares visit-based and strict counter
// readings under pre-all (the ablation behind the reproduction's main
// interpretive decision).
func BenchmarkE7CounterSemantics(b *testing.B) {
	for _, strict := range []bool{false, true} {
		name := "visit-based"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			w, err := workloads.ByName("jpegdct")
			if err != nil {
				b.Fatal(err)
			}
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.RunCell(w, core.Config{
					CompressK: 4, Strategy: core.PreAll, DecompressK: 2,
					StrictCounters: strict,
				}, benchSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Overhead(), "overhead-%")
			b.ReportMetric(float64(res.Core.Prefetches), "prefetches")
		})
	}
}

// BenchmarkE8Writeback compares delete-only against writeback
// compression (the Section 5 design argument).
func BenchmarkE8Writeback(b *testing.B) {
	for _, wb := range []bool{false, true} {
		name := "delete-only"
		if wb {
			name = "writeback"
		}
		b.Run(name, func(b *testing.B) {
			w, err := workloads.ByName("fft")
			if err != nil {
				b.Fatal(err)
			}
			conf := core.Config{CompressK: 2, WritebackCompression: wb}
			if wb {
				conf.ManagedBytes = 4 * w.Program.TotalBytes()
			}
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.RunCell(w, conf, benchSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.AvgSaving(), "avg-saving-%")
			b.ReportMetric(float64(res.CompThreadBusy), "comp-busy-cyc")
		})
	}
}

// BenchmarkE9Fragmentation compares allocation policies under copy
// churn (Section 5's fragmentation concern).
func BenchmarkE9Fragmentation(b *testing.B) {
	for _, pol := range []mem.FitPolicy{mem.FirstFit, mem.BestFit} {
		b.Run(pol.String(), func(b *testing.B) {
			w, err := workloads.ByName("fft")
			if err != nil {
				b.Fatal(err)
			}
			probe, err := bench.RunCell(w, core.Config{CompressK: 2}, benchSteps)
			if err != nil {
				b.Fatal(err)
			}
			managed := (probe.PeakResident - probe.CompressedSize) * 8 / 5
			var frag float64
			for i := 0; i < b.N; i++ {
				code, err := w.Program.CodeBytes()
				if err != nil {
					b.Fatal(err)
				}
				codec, err := compress.New("dict", code)
				if err != nil {
					b.Fatal(err)
				}
				m, err := core.NewManager(w.Program, core.Config{
					Codec: codec, CompressK: 2, ManagedBytes: managed, Alloc: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				tr, err := trace.Generate(w.Program.Graph,
					trace.GenConfig{Seed: w.Seed, MaxSteps: benchSteps, Restart: true})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(m, tr, sim.DefaultCosts()); err != nil {
					b.Fatal(err)
				}
				frag = m.Image().Managed().ExternalFragmentation()
			}
			b.ReportMetric(100*frag, "frag-%")
		})
	}
}

// BenchmarkE10SharedPool times the two-application shared-memory system
// (Section 2's motivation) against a static budget split.
func BenchmarkE10SharedPool(b *testing.B) {
	mk := func(name string) (*multi.App, error) {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		code, err := w.Program.CodeBytes()
		if err != nil {
			return nil, err
		}
		codec, err := compress.New("dict", code)
		if err != nil {
			return nil, err
		}
		m, err := core.NewManager(w.Program, core.Config{Codec: codec, CompressK: 4})
		if err != nil {
			return nil, err
		}
		tr, err := trace.Generate(w.Program.Graph,
			trace.GenConfig{Seed: w.Seed, MaxSteps: benchSteps, Restart: true})
		if err != nil {
			return nil, err
		}
		return &multi.App{Name: name, Manager: m, Trace: tr}, nil
	}
	var evictions int64
	for i := 0; i < b.N; i++ {
		a, err := mk("jpegdct")
		if err != nil {
			b.Fatal(err)
		}
		c, err := mk("mpeg2motion")
		if err != nil {
			b.Fatal(err)
		}
		pool := a.Manager.CompressedSize() + c.Manager.CompressedSize() +
			(a.Manager.UncompressedSize()+c.Manager.UncompressedSize())/8
		sys, err := multi.NewSystem(pool, sim.DefaultCosts(), a, c)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		evictions = res.GlobalEvictions
	}
	b.ReportMetric(float64(evictions), "global-evictions")
}

func ksuffix(k int) string { return fmt.Sprintf("k=%d", k) }
